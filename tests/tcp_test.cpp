// TCP state-machine and end-to-end behaviour tests on the loopback rig,
// plus unit tests for the TCP helpers (sequence math, RTT estimation,
// reassembly).
#include <gtest/gtest.h>

#include "tcp/reassembly.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/seq.hpp"
#include "util/loopback.hpp"

namespace nk {
namespace {

using stack::socket_event_type;
using test::lan_params;
using test::loopback;

// --- helpers -------------------------------------------------------------------------

struct sink_state {
  stack::socket_id listener = 0;
  stack::socket_id conn = 0;
  buffer_chain received;
  bool saw_eof = false;
};

// Installs a byte sink on stack `st` listening at `port`.
void install_sink(stack::netstack& st, std::uint16_t port, sink_state& state) {
  state.listener = st.tcp_listen(port).value();
  st.set_event_handler([&st, &state](const stack::socket_event& ev) {
    if (ev.type == socket_event_type::accept_ready) {
      if (auto r = st.accept(state.listener)) state.conn = r.value();
      return;
    }
    if (ev.type == socket_event_type::readable && ev.sock == state.conn) {
      while (true) {
        auto r = st.recv(state.conn, 1 << 20);
        if (!r) {
          if (r.error() == errc::closed) state.saw_eof = true;
          break;
        }
        state.received.append(std::move(r).value());
      }
    }
  });
}

// --- handshake / teardown ---------------------------------------------------------------

TEST(tcp_handshake, connects_and_reports_events) {
  loopback net{lan_params()};
  sink_state sink;
  install_sink(net.b, 5001, sink);

  bool connected = false;
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && ev.type == socket_event_type::connected) {
      connected = true;
    }
  });

  net.run_for(milliseconds(10));
  EXPECT_TRUE(connected);
  ASSERT_NE(sink.conn, 0u);
  EXPECT_EQ(net.a.tcb_of(conn)->state(), tcp::tcp_state::established);
  EXPECT_EQ(net.b.tcb_of(sink.conn)->state(), tcp::tcp_state::established);
}

TEST(tcp_handshake, connect_to_closed_port_is_refused) {
  loopback net{lan_params()};
  const auto conn = net.a.tcp_connect(net.addr_b(4444)).value();
  errc err = errc::ok;
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && ev.type == socket_event_type::error) {
      err = ev.error;
    }
  });
  net.run_for(milliseconds(50));
  EXPECT_EQ(err, errc::connection_reset);
  EXPECT_GT(net.b.stats().resets_sent, 0u);
}

TEST(tcp_handshake, syn_timeout_when_peer_unreachable) {
  auto params = lan_params();
  params.wire.loss_rate = 1.0;  // black hole
  tcp::tcp_config t = params.tcp_a;
  t.max_syn_retries = 2;
  t.rto.initial_rto = milliseconds(20);
  params.tcp_a = t;
  loopback net{params};

  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  errc err = errc::ok;
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && ev.type == socket_event_type::error) {
      err = ev.error;
    }
  });
  net.run_for(seconds(2));
  EXPECT_EQ(err, errc::timed_out);
}

TEST(tcp_close, fin_handshake_reaches_closed_and_signals_eof) {
  loopback net{lan_params()};
  sink_state sink;
  install_sink(net.b, 5001, sink);

  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));
  ASSERT_TRUE(net.a.send(conn, buffer::pattern(1000, 0)).ok());
  net.run_for(milliseconds(5));
  ASSERT_TRUE(net.a.close(conn).ok());
  net.run_for(milliseconds(20));

  EXPECT_TRUE(sink.saw_eof);
  EXPECT_EQ(sink.received.size(), 1000u);
  // The passive side should close too once it calls close(); do that now.
  ASSERT_TRUE(net.b.close(sink.conn).ok());
  net.run_for(seconds(2));
  // Both endpoints are gone from their stacks (reaped after TIME_WAIT).
  EXPECT_EQ(net.a.tcb_of(conn), nullptr);
  EXPECT_EQ(net.b.tcb_of(sink.conn), nullptr);
}

TEST(tcp_close, abort_sends_rst) {
  loopback net{lan_params()};
  sink_state sink;
  install_sink(net.b, 5001, sink);
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));

  errc remote_err = errc::ok;
  net.b.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.type == socket_event_type::error) remote_err = ev.error;
  });
  ASSERT_TRUE(net.a.abort(conn).ok());
  net.run_for(milliseconds(5));
  EXPECT_EQ(remote_err, errc::connection_reset);
}

// --- data transfer ---------------------------------------------------------------------

TEST(tcp_transfer, small_message_delivered_exactly) {
  loopback net{lan_params()};
  sink_state sink;
  install_sink(net.b, 5001, sink);
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));
  ASSERT_TRUE(net.a.send(conn, buffer::pattern(12345, 0)).ok());
  net.run_for(milliseconds(50));
  EXPECT_EQ(sink.received.size(), 12345u);
  EXPECT_TRUE(sink.received.pop(12345).matches_pattern(0));
}

TEST(tcp_transfer, multi_megabyte_clean_link) {
  loopback net{lan_params()};
  sink_state sink;
  install_sink(net.b, 5001, sink);
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));

  constexpr std::uint64_t total = 8 * 1024 * 1024;
  std::uint64_t queued = 0;
  // Keep the send buffer topped up from writable events.
  auto push = [&] {
    while (queued < total) {
      const std::size_t n =
          std::min<std::uint64_t>(64 * 1024, total - queued);
      auto r = net.a.send(conn, buffer::pattern(n, queued));
      if (!r) break;
      queued += r.value();
    }
  };
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && ev.type == socket_event_type::writable) push();
  });
  push();
  net.run_for(seconds(2));

  EXPECT_EQ(sink.received.size(), total);
  EXPECT_TRUE(sink.received.pop(total).matches_pattern(0));
  // 8 MB in 2 s needs > 32 Mb/s: trivially met at 10 Gb/s unless broken.
  EXPECT_EQ(net.a.tcb_of(conn)->stats().rtos, 0u);
}

TEST(tcp_transfer, survives_heavy_loss_with_integrity) {
  auto params = lan_params(99);
  params.forward_loss = 0.05;  // 5% data-direction loss
  loopback net{params};
  sink_state sink;
  install_sink(net.b, 5001, sink);
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(20));

  constexpr std::uint64_t total = 512 * 1024;
  std::uint64_t queued = 0;
  auto push = [&] {
    while (queued < total) {
      const std::size_t n = std::min<std::uint64_t>(32 * 1024, total - queued);
      auto r = net.a.send(conn, buffer::pattern(n, queued));
      if (!r) break;
      queued += r.value();
    }
  };
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && ev.type == socket_event_type::writable) push();
  });
  push();
  net.run_for(seconds(30));

  ASSERT_EQ(sink.received.size(), total);
  EXPECT_TRUE(sink.received.pop(total).matches_pattern(0));
  const auto& st = net.a.tcb_of(conn)->stats();
  EXPECT_GT(st.bytes_retransmitted, 0u);
}

TEST(tcp_transfer, bidirectional_streams_do_not_interfere) {
  loopback net{lan_params()};
  sink_state sink_b;
  install_sink(net.b, 5001, sink_b);
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));

  // b echoes nothing; instead both sides just send independent patterns.
  buffer_chain received_a;
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && ev.type == socket_event_type::readable) {
      while (auto r = net.a.recv(conn, 1 << 20)) {
        received_a.append(std::move(r).value());
      }
    }
  });

  ASSERT_TRUE(net.a.send(conn, buffer::pattern(100000, 0)).ok());
  ASSERT_TRUE(net.b.send(sink_b.conn, buffer::pattern(100000, 0)).ok());
  net.run_for(milliseconds(200));

  EXPECT_EQ(sink_b.received.size(), 100000u);
  EXPECT_EQ(received_a.size(), 100000u);
  EXPECT_TRUE(received_a.pop(100000).matches_pattern(0));
}

TEST(tcp_flow_control, zero_window_stalls_then_resumes) {
  auto params = lan_params();
  tcp::tcp_config small = params.tcp_b;
  small.recv_buffer = 16 * 1024;  // tiny receiver
  params.tcp_b = small;
  loopback net{params};

  // Receiver that does NOT read until told to.
  auto listener = net.b.tcp_listen(5001).value();
  stack::socket_id server_conn = 0;
  net.b.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.type == socket_event_type::accept_ready) {
      server_conn = net.b.accept(listener).value();
    }
  });

  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));

  std::uint64_t queued = 0;
  constexpr std::uint64_t total = 256 * 1024;
  auto push = [&] {
    while (queued < total) {
      auto r = net.a.send(conn, buffer::pattern(16 * 1024, queued));
      if (!r) break;
      queued += r.value();
    }
  };
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && ev.type == socket_event_type::writable) push();
  });
  push();
  net.run_for(milliseconds(200));

  // Receiver never read: delivery is limited to roughly its buffer.
  const std::uint64_t acked_before = net.a.tcb_of(conn)->stats().bytes_acked;
  EXPECT_LT(acked_before, 64 * 1024u);

  // Now drain the receiver continuously; the window reopens and the rest
  // flows.
  buffer_chain received;
  net.b.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == server_conn && ev.type == socket_event_type::readable) {
      while (auto r = net.b.recv(server_conn, 1 << 20)) {
        received.append(std::move(r).value());
      }
    }
  });
  // Kick the drain (data is already buffered).
  while (auto r = net.b.recv(server_conn, 1 << 20)) {
    received.append(std::move(r).value());
  }
  net.run_for(seconds(10));
  EXPECT_EQ(received.size() , total);
  EXPECT_TRUE(received.pop(total).matches_pattern(0));
}

TEST(tcp_acks, delayed_acks_reduce_ack_traffic) {
  loopback net{lan_params()};
  sink_state sink;
  install_sink(net.b, 5001, sink);
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));
  ASSERT_TRUE(net.a.send(conn, buffer::pattern(200000, 0)).ok());
  net.run_for(milliseconds(100));

  const auto& tx = net.a.tcb_of(conn)->stats();
  // Received ACK segments should be well under one per data segment.
  EXPECT_LT(tx.segments_received, tx.segments_sent);
}

TEST(tcp_nagle, coalesces_small_writes) {
  auto params = lan_params();
  tcp::tcp_config nagle_on = params.tcp_a;
  nagle_on.nagle = true;
  params.tcp_a = nagle_on;
  loopback net{params};
  sink_state sink;
  install_sink(net.b, 5001, sink);
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));

  for (int i = 0; i < 100; ++i) {
    (void)net.a.send(conn, buffer::pattern(10, 10ull * i));
  }
  net.run_for(milliseconds(100));
  EXPECT_EQ(sink.received.size(), 1000u);
  EXPECT_TRUE(sink.received.pop(1000).matches_pattern(0));
  // Far fewer segments than writes (1 in-flight + coalesced rest).
  EXPECT_LT(net.a.tcb_of(conn)->stats().segments_sent, 20u);
}

// --- unit: sequence math ------------------------------------------------------------------

TEST(tcp_seq, wrap_unwrap_identity) {
  const std::uint32_t isn = 0xfffffff0;
  for (std::uint64_t abs : {0ull, 1ull, 100ull, (1ull << 32) - 1, (1ull << 32),
                            (1ull << 33) + 12345}) {
    const std::uint32_t wire = tcp::wrap_seq(abs, isn);
    EXPECT_EQ(tcp::unwrap_seq(wire, isn, abs), abs);
    // Reference within half the space still recovers it.
    EXPECT_EQ(tcp::unwrap_seq(wire, isn, abs + 1000), abs);
    if (abs > 1000) {
      EXPECT_EQ(tcp::unwrap_seq(wire, isn, abs - 1000), abs);
    }
  }
}

TEST(tcp_seq, unwrap_across_wrap_boundary) {
  const std::uint32_t isn = 0xffffff00;
  // Stream offset 0x200 lands past the 32-bit wrap of the wire space.
  const std::uint32_t wire = tcp::wrap_seq(0x200, isn);
  EXPECT_EQ(wire, 0x100u);
  EXPECT_EQ(tcp::unwrap_seq(wire, isn, 0x1f0), 0x200u);
}

// --- unit: rtt estimation ------------------------------------------------------------------

TEST(rtt_estimator, first_sample_seeds_rfc6298) {
  tcp::rtt_estimator est;
  est.add_sample(milliseconds(100));
  EXPECT_EQ(est.srtt(), milliseconds(100));
  EXPECT_EQ(est.rttvar(), milliseconds(50));
  EXPECT_EQ(est.rto(), milliseconds(300));  // srtt + 4*rttvar
}

TEST(rtt_estimator, converges_on_stable_rtt) {
  tcp::rtt_estimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(milliseconds(50));
  EXPECT_EQ(est.srtt(), milliseconds(50));
  // Variance decays toward zero; RTO floors at min_rto.
  EXPECT_LE(est.rto(), milliseconds(210));
  EXPECT_GE(est.rto(), milliseconds(200));  // default min_rto
}

TEST(rtt_estimator, backoff_doubles_and_caps) {
  tcp::rtt_estimator::config cfg;
  cfg.max_rto = seconds(4);
  tcp::rtt_estimator est{cfg};
  est.add_sample(milliseconds(100));
  const sim_time base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto(), base * 2);
  for (int i = 0; i < 10; ++i) est.backoff();
  EXPECT_EQ(est.rto(), seconds(4));
}

TEST(min_rtt_tracker, windowed_minimum_expires) {
  tcp::min_rtt_tracker t{seconds(1)};
  t.add(milliseconds(10), sim_time::zero());
  t.add(milliseconds(20), milliseconds(100));
  EXPECT_EQ(t.value(), milliseconds(10));
  // After the window passes, a larger sample replaces the stale minimum.
  t.add(milliseconds(30), seconds(2));
  EXPECT_EQ(t.value(), milliseconds(30));
}

// --- unit: reassembly ------------------------------------------------------------------------

TEST(reassembly, in_order_passthrough) {
  tcp::reassembly_buffer r;
  std::uint64_t next = 0;
  auto out = r.insert(0, buffer::pattern(100, 0), next);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(next, 100u);
  EXPECT_TRUE(r.empty());
}

TEST(reassembly, fills_gap_and_releases) {
  tcp::reassembly_buffer r;
  std::uint64_t next = 0;
  auto first = r.insert(100, buffer::pattern(100, 100), next);
  EXPECT_TRUE(first.empty());
  EXPECT_EQ(next, 0u);
  auto out = r.insert(0, buffer::pattern(100, 0), next);
  EXPECT_EQ(out.size(), 200u);
  EXPECT_EQ(next, 200u);
  EXPECT_TRUE(out.pop(200).matches_pattern(0));
}

TEST(reassembly, duplicate_and_overlap_are_deduplicated) {
  tcp::reassembly_buffer r;
  std::uint64_t next = 0;
  (void)r.insert(0, buffer::pattern(100, 0), next);
  // Retransmission overlapping delivered + held data.
  (void)r.insert(50, buffer::pattern(100, 50), next);
  EXPECT_EQ(next, 150u);
  auto out = r.insert(150, buffer::pattern(50, 150), next);
  EXPECT_EQ(next, 200u);
  EXPECT_TRUE(out.pop(50).matches_pattern(150));
}

TEST(reassembly, multiple_gaps_release_in_order) {
  tcp::reassembly_buffer r;
  std::uint64_t next = 0;
  (void)r.insert(300, buffer::pattern(100, 300), next);
  (void)r.insert(100, buffer::pattern(100, 100), next);
  EXPECT_EQ(r.buffered_bytes(), 200u);
  auto out1 = r.insert(0, buffer::pattern(100, 0), next);
  EXPECT_EQ(next, 200u);  // 0-100 new + 100-200 held
  EXPECT_TRUE(out1.pop(200).matches_pattern(0));
  auto out2 = r.insert(200, buffer::pattern(100, 200), next);
  EXPECT_EQ(next, 400u);
  EXPECT_TRUE(out2.pop(200).matches_pattern(200));
  EXPECT_TRUE(r.empty());
}

TEST(reassembly, stale_data_ignored) {
  tcp::reassembly_buffer r;
  std::uint64_t next = 0;
  (void)r.insert(0, buffer::pattern(100, 0), next);
  auto out = r.insert(0, buffer::pattern(50, 0), next);  // full duplicate
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(next, 100u);
}

}  // namespace
}  // namespace nk
