// GuestLib robustness fuzz: random sequences of socket-API calls against a
// live NetKernel channel must never crash, corrupt chunk accounting, or
// wedge the channel. The adversary mixes valid and invalid fds, premature
// operations, and interleaved closes while the simulation runs.
//
// The raw-ring fuzzers below go a layer deeper: they bypass GuestLib
// entirely and write forged/garbage nqes straight into the guest-writable
// job rings — the hostile-tenant threat model of DESIGN.md §14. The
// admission firewall must reject every one with exact per-reason
// accounting, leak nothing, and keep serving well-behaved tenants.
#include <gtest/gtest.h>

#include <vector>

#include "apps/scenario.hpp"
#include "common/rng.hpp"
#include "core/hostile.hpp"

namespace nk::core {
namespace {

using apps::side;
using apps::testbed;

class guestlib_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(guestlib_fuzz, random_op_sequences_hold_invariants) {
  testbed bed{apps::datacenter_params(GetParam())};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "fuzz-vm";
  auto tenant = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "peer-vm";
  nsm_cfg.name = "nsm-peer";
  auto peer = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  // A live echo service so some connects succeed.
  auto& gp = *peer.glib;
  const auto lfd = gp.nk_socket().value();
  ASSERT_TRUE(gp.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(gp.nk_listen(lfd).ok());
  gp.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      while (gp.nk_accept(lfd).ok()) {
      }
    }
  });

  auto& glib = *tenant.glib;
  rng random{GetParam() * 7919 + 13};
  std::vector<std::uint32_t> fds;
  const net::socket_addr good{peer.module->config().address, 7000};
  const net::socket_addr bad{peer.module->config().address, 9};

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t op = random.next_below(12);
    const std::uint32_t fd =
        fds.empty() || random.chance(0.1)
            ? static_cast<std::uint32_t>(random.next_below(1 << 20))
            : fds[random.next_below(fds.size())];
    switch (op) {
      case 0:
        if (auto r = glib.nk_socket()) fds.push_back(r.value());
        break;
      case 1:
        if (auto r = glib.nk_udp_open(
                static_cast<std::uint16_t>(random.next_below(65536)))) {
          fds.push_back(r.value());
        }
        break;
      case 2:
        (void)glib.nk_bind(fd, static_cast<std::uint16_t>(
                                   random.next_below(65536)));
        break;
      case 3:
        (void)glib.nk_listen(fd);
        break;
      case 4:
        (void)glib.nk_connect(fd, random.chance(0.8) ? good : bad);
        break;
      case 5:
        (void)glib.nk_send(fd, buffer::pattern(random.next_below(32768), 0));
        break;
      case 6:
        (void)glib.nk_recv(fd, 1 + random.next_below(65536));
        break;
      case 7:
        (void)glib.nk_udp_send_to(fd, good,
                                  buffer::pattern(random.next_below(4096), 0));
        break;
      case 8:
        (void)glib.nk_udp_recv_from(fd);
        break;
      case 9:
        (void)glib.nk_shutdown(fd);
        break;
      case 10:
        (void)glib.nk_close(fd);
        std::erase(fds, fd);
        break;
      case 11:
        (void)glib.nk_accept(fd);
        break;
      default:
        break;
    }
    if (random.chance(0.3)) {
      bed.run_for(microseconds(1 + random.next_below(2000)));
    }
  }
  // Quiesce, close everything, and let completions settle.
  for (const auto fd : fds) (void)glib.nk_close(fd);
  bed.run_for(seconds(3));

  // Invariant: every huge-page chunk came home.
  auto* ch = bed.netkernel(side::a).channel_of(tenant.vm->id());
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
  // Invariant: the channel queues drained (nothing wedged).
  EXPECT_EQ(ch->vm_job_depth(), 0u);
  EXPECT_EQ(ch->nsm_job_depth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(seeds, guestlib_fuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- raw-ring hostile fuzz (admission firewall) ----------------------------

// Rig for the raw-ring tests: one target VM whose rings we abuse directly,
// one well-behaved peer VM on the other host proving the engine keeps
// serving clean tenants. The firewall's escalation is disabled (an
// effectively infinite violation budget) so every forgery is individually
// rejected and the counters can be checked for exact equality.
struct raw_ring_rig {
  explicit raw_ring_rig(std::uint64_t seed)
      : params{[&] {
          auto p = apps::datacenter_params(seed);
          p.netkernel.shards = 2;
          p.netkernel.firewall.violation_burst = 1ull << 30;
          return p;
        }()},
        bed{params} {
    nsm_config nsm_cfg;
    nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
    virt::vm_config vm_cfg;
    vm_cfg.name = "target-vm";
    target = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
    vm_cfg.name = "peer-vm";
    nsm_cfg.name = "nsm-peer";
    peer = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  }

  [[nodiscard]] core_engine& engine() { return bed.netkernel(side::a); }

  [[nodiscard]] std::uint64_t rejected_total() {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < engine().shards(); ++s) {
      n += engine().shard_stats(s).rejected_nqes;
    }
    return n;
  }

  [[nodiscard]] std::uint64_t rejected_by_reason_sum() {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < engine().shards(); ++s) {
      for (const auto c : engine().shard_rejected_reasons(s)) n += c;
    }
    return n;
  }

  void expect_invariants() {
    // Nothing leaked from the abused pool...
    auto* ch = engine().channel_of(target.vm->id());
    ASSERT_NE(ch, nullptr);
    EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
    // ...and every shard's books balance, forgeries included.
    for (std::size_t s = 0; s < engine().shards(); ++s) {
      const auto& st = engine().shard_stats(s);
      EXPECT_EQ(st.unroutable_nqes + st.nqes_dropped + st.stale_nqes +
                    st.rejected_nqes,
                engine().shard_traces_dropped(s) +
                    engine().shard_discards_untraced(s))
          << "shard " << s;
    }
  }

  apps::testbed_params params;
  testbed bed;
  apps::nk_tenant target;
  apps::nk_tenant peer;
};

class raw_ring_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(raw_ring_fuzz, forged_nqes_rejected_exactly_no_leak) {
  raw_ring_rig rig{GetParam()};
  hostile_guest attacker{rig.engine(), rig.target.vm->id(),
                         GetParam() * 6364136223846793005ull + 1};

  // Directed forgeries across every attack category, interleaved with sim
  // progress so rings drain and refill.
  rng random{GetParam() ^ 0xabcdefull};
  for (int round = 0; round < 20; ++round) {
    attacker.storm(15);
    rig.bed.run_for(microseconds(200 + random.next_below(500)));
  }
  rig.bed.run_for(milliseconds(50));

  const auto& st = attacker.stats();
  EXPECT_GT(st.injected, 0u);
  EXPECT_EQ(st.no_channel, 0u);  // no escalation: the VM stays attached
  // With escalation off, every landed forgery is individually rejected.
  EXPECT_EQ(rig.rejected_total(), st.injected);
  EXPECT_EQ(rig.rejected_by_reason_sum(), rig.rejected_total());
  EXPECT_EQ(rig.engine()
                .metrics()
                .value_of("engine_nqes_rejected")
                .value_or(0.0),
            static_cast<double>(st.injected));
  rig.expect_invariants();
  EXPECT_FALSE(rig.engine().quarantined(rig.target.vm->id()));
}

TEST_P(raw_ring_fuzz, random_garbage_nqes_never_crash_or_leak) {
  raw_ring_rig rig{GetParam()};
  auto* ch = rig.engine().channel_of(rig.target.vm->id());
  ASSERT_NE(ch, nullptr);

  // Fully random nqe fields. Every one is force-invalidated (bad epoch at
  // minimum, often also a garbage opcode / foreign desc / forged owner), so
  // rejections must equal landed pushes exactly.
  rng random{GetParam() * 2862933555777941757ull + 3};
  std::uint64_t landed = 0;
  for (int i = 0; i < 400; ++i) {
    shm::nqe e;
    e.op = static_cast<shm::nqe_op>(random.next_below(256));
    e.epoch = static_cast<std::uint8_t>(1 + random.next_below(255));
    e.owner = static_cast<std::uint16_t>(random.next_below(1 << 16));
    e.handle = static_cast<std::uint32_t>(random.next_u64());
    e.token = random.next_u64();
    e.status = static_cast<std::int32_t>(random.next_u64());
    e.arg0 = random.next_u64();
    e.arg1 = random.next_u64();
    if (random.chance(0.5)) {
      e.desc.chunk.pool_key = static_cast<std::uint32_t>(random.next_u64());
      e.desc.chunk.index = static_cast<std::uint32_t>(random.next_below(1 << 20));
      e.desc.offset = static_cast<std::uint32_t>(random.next_below(1 << 16));
      e.desc.length = static_cast<std::uint32_t>(random.next_below(1 << 16));
    }
    const auto s = static_cast<std::size_t>(random.next_below(ch->shards()));
    if (ch->vm_q(s).job.push(e)) {
      ++landed;
      rig.engine().notify_from_vm(rig.target.vm->id(), s);
    }
    if (random.chance(0.2)) {
      rig.bed.run_for(microseconds(1 + random.next_below(300)));
    }
  }
  rig.bed.run_for(milliseconds(50));

  EXPECT_GT(landed, 0u);
  EXPECT_EQ(rig.rejected_total(), landed);
  EXPECT_EQ(rig.rejected_by_reason_sum(), rig.rejected_total());
  rig.expect_invariants();

  // The engine still serves clean tenants: a fresh legit connect from the
  // abused VM's own GuestLib completes against the peer's listener.
  auto& gp = *rig.peer.glib;
  const auto lfd = gp.nk_socket().value();
  ASSERT_TRUE(gp.nk_bind(lfd, 7100).ok());
  ASSERT_TRUE(gp.nk_listen(lfd).ok());
  gp.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      while (gp.nk_accept(lfd).ok()) {
      }
    }
  });
  auto& glib = *rig.target.glib;
  const auto cfd = glib.nk_socket().value();
  bool connected = false;
  glib.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                             errc) {
    if (fd == cfd && t == stack::socket_event_type::connected) {
      connected = true;
    }
  });
  ASSERT_TRUE(
      glib.nk_connect(cfd, {rig.peer.module->config().address, 7100}).ok());
  rig.bed.run_for(milliseconds(100));
  EXPECT_TRUE(connected);
}

INSTANTIATE_TEST_SUITE_P(seeds, raw_ring_fuzz,
                         ::testing::Range<std::uint64_t>(1, 6));

// --- raw_ring: req_stat_refresh forgeries (DESIGN.md §16) -------------------

// Forged stat-refresh nqes (foreign owner, stamped epoch, smuggled
// descriptor) must all die at the admission firewall: exact rejection
// accounting, the stat page never republished by a forgery, nothing leaked,
// and the escalation ladder no further than warn with the budget disabled.
TEST(raw_ring_stat_refresh, forged_refreshes_rejected_page_untouched) {
  raw_ring_rig rig{11};
  auto* ch = rig.engine().channel_of(rig.target.vm->id());
  ASSERT_NE(ch, nullptr);
  // attach_vm seeded the page exactly once.
  const std::uint64_t version_before = ch->stats.version();
  EXPECT_GT(version_before, 0u);

  hostile_guest attacker{rig.engine(), rig.target.vm->id(), 2024};
  std::uint64_t landed = 0;
  for (int i = 0; i < 60; ++i) {
    if (attacker.inject(hostile_guest::attack::stat_forge)) ++landed;
    if (i % 8 == 7) rig.bed.run_for(microseconds(500));
  }
  rig.bed.run_for(milliseconds(20));

  EXPECT_GT(landed, 0u);
  EXPECT_EQ(rig.rejected_total(), landed);
  EXPECT_EQ(rig.rejected_by_reason_sum(), rig.rejected_total());
  // No forgery reached the publisher: the page still holds the attach-time
  // snapshot.
  EXPECT_EQ(ch->stats.version(), version_before);
  rig.expect_invariants();
  // Escalation unchanged: violations were recorded but the (effectively
  // infinite) budget keeps the VM at warn, attached and serviceable.
  EXPECT_FALSE(rig.engine().quarantined(rig.target.vm->id()));
  EXPECT_LE(static_cast<int>(rig.engine().abuse_level_of(rig.target.vm->id())),
            static_cast<int>(abuse_level::warn));
}

// A refresh flood past the per-VM budget: the budgeted prefix is served
// (page republished), the excess is rejected and counted as badop, and a
// well-formed refresh after the budget refills is served again.
TEST(raw_ring_stat_refresh, refresh_flood_beyond_budget_rejected) {
  raw_ring_rig rig{12};
  auto* ch = rig.engine().channel_of(rig.target.vm->id());
  ASSERT_NE(ch, nullptr);
  auto& glib = *rig.target.glib;

  const std::uint64_t burst = rig.engine().config().firewall.stat_refresh_burst;
  const std::uint64_t extra = 8;
  const std::uint64_t version_before = ch->stats.version();
  for (std::uint64_t i = 0; i < burst + extra; ++i) {
    ASSERT_TRUE(glib.nk_stat_refresh().ok());
  }
  rig.bed.run_for(milliseconds(20));

  // The budgeted prefix republished the page; the flood was refused.
  EXPECT_EQ(ch->stats.version(), version_before + 2 * burst);
  EXPECT_EQ(rig.rejected_total(), extra);
  std::uint64_t badop = 0;
  for (std::size_t s = 0; s < rig.engine().shards(); ++s) {
    badop += rig.engine().shard_rejected_reasons(
        s)[static_cast<std::size_t>(reject_reason::badop)];
  }
  EXPECT_EQ(badop, extra);
  rig.expect_invariants();
  EXPECT_FALSE(rig.engine().quarantined(rig.target.vm->id()));

  // Budget refills with time; a polite refresh is served again.
  rig.bed.run_for(milliseconds(100));
  ASSERT_TRUE(glib.nk_stat_refresh().ok());
  rig.bed.run_for(milliseconds(20));
  EXPECT_EQ(ch->stats.version(), version_before + 2 * (burst + 1));
  EXPECT_EQ(rig.rejected_total(), extra);  // no new rejections
}

}  // namespace
}  // namespace nk::core
