// GuestLib robustness fuzz: random sequences of socket-API calls against a
// live NetKernel channel must never crash, corrupt chunk accounting, or
// wedge the channel. The adversary mixes valid and invalid fds, premature
// operations, and interleaved closes while the simulation runs.
#include <gtest/gtest.h>

#include <vector>

#include "apps/scenario.hpp"
#include "common/rng.hpp"

namespace nk::core {
namespace {

using apps::side;
using apps::testbed;

class guestlib_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(guestlib_fuzz, random_op_sequences_hold_invariants) {
  testbed bed{apps::datacenter_params(GetParam())};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "fuzz-vm";
  auto tenant = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "peer-vm";
  nsm_cfg.name = "nsm-peer";
  auto peer = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  // A live echo service so some connects succeed.
  auto& gp = *peer.glib;
  const auto lfd = gp.nk_socket().value();
  ASSERT_TRUE(gp.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(gp.nk_listen(lfd).ok());
  gp.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      while (gp.nk_accept(lfd).ok()) {
      }
    }
  });

  auto& glib = *tenant.glib;
  rng random{GetParam() * 7919 + 13};
  std::vector<std::uint32_t> fds;
  const net::socket_addr good{peer.module->config().address, 7000};
  const net::socket_addr bad{peer.module->config().address, 9};

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t op = random.next_below(12);
    const std::uint32_t fd =
        fds.empty() || random.chance(0.1)
            ? static_cast<std::uint32_t>(random.next_below(1 << 20))
            : fds[random.next_below(fds.size())];
    switch (op) {
      case 0:
        if (auto r = glib.nk_socket()) fds.push_back(r.value());
        break;
      case 1:
        if (auto r = glib.nk_udp_open(
                static_cast<std::uint16_t>(random.next_below(65536)))) {
          fds.push_back(r.value());
        }
        break;
      case 2:
        (void)glib.nk_bind(fd, static_cast<std::uint16_t>(
                                   random.next_below(65536)));
        break;
      case 3:
        (void)glib.nk_listen(fd);
        break;
      case 4:
        (void)glib.nk_connect(fd, random.chance(0.8) ? good : bad);
        break;
      case 5:
        (void)glib.nk_send(fd, buffer::pattern(random.next_below(32768), 0));
        break;
      case 6:
        (void)glib.nk_recv(fd, 1 + random.next_below(65536));
        break;
      case 7:
        (void)glib.nk_udp_send_to(fd, good,
                                  buffer::pattern(random.next_below(4096), 0));
        break;
      case 8:
        (void)glib.nk_udp_recv_from(fd);
        break;
      case 9:
        (void)glib.nk_shutdown(fd);
        break;
      case 10:
        (void)glib.nk_close(fd);
        std::erase(fds, fd);
        break;
      case 11:
        (void)glib.nk_accept(fd);
        break;
      default:
        break;
    }
    if (random.chance(0.3)) {
      bed.run_for(microseconds(1 + random.next_below(2000)));
    }
  }
  // Quiesce, close everything, and let completions settle.
  for (const auto fd : fds) (void)glib.nk_close(fd);
  bed.run_for(seconds(3));

  // Invariant: every huge-page chunk came home.
  auto* ch = bed.netkernel(side::a).channel_of(tenant.vm->id());
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
  // Invariant: the channel queues drained (nothing wedged).
  EXPECT_EQ(ch->vm_job_depth(), 0u);
  EXPECT_EQ(ch->nsm_job_depth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(seeds, guestlib_fuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace nk::core
