// Unit tests for links, queues and switching.
#include <gtest/gtest.h>

#include <cstring>

#include "phys/l3_switch.hpp"
#include "phys/link.hpp"
#include "phys/nic.hpp"
#include "phys/queue.hpp"
#include "sim/simulator.hpp"

namespace nk::phys {
namespace {

net::packet make_packet(std::size_t payload, net::ipv4_addr dst = {}) {
  net::packet p;
  p.ip.dst = dst;
  p.payload = buffer::zeroed(payload);
  return p;
}

TEST(link, delivery_time_is_serialization_plus_propagation) {
  sim::simulator s;
  link_config cfg;
  cfg.rate = data_rate::gbps(10);
  cfg.propagation_delay = microseconds(10);
  link l{s, cfg};
  sim_time arrival{};
  l.set_sink([&](net::packet) { arrival = s.now(); });

  net::packet p = make_packet(1250 - 70);  // 1250 B on the wire = 1 us at 10G
  ASSERT_EQ(p.wire_size(), 1250u);
  l.send(std::move(p));
  s.run();
  EXPECT_EQ(arrival, microseconds(11));
}

TEST(link, back_to_back_packets_serialize) {
  sim::simulator s;
  link_config cfg;
  cfg.rate = data_rate::gbps(10);
  cfg.propagation_delay = sim_time::zero();
  link l{s, cfg};
  std::vector<sim_time> arrivals;
  l.set_sink([&](net::packet) { arrivals.push_back(s.now()); });
  l.send(make_packet(1250 - 70));
  l.send(make_packet(1250 - 70));
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], microseconds(1));
  EXPECT_EQ(arrivals[1], microseconds(2));
}

TEST(link, queue_overflow_drops) {
  sim::simulator s;
  link_config cfg;
  cfg.rate = data_rate::mbps(1);  // slow: everything queues
  cfg.queue.capacity_bytes = 3000;
  link l{s, cfg};
  int delivered = 0;
  l.set_sink([&](net::packet) { ++delivered; });
  for (int i = 0; i < 10; ++i) l.send(make_packet(1430));
  s.run();
  // 1 transmitting + 2 queued (2 x 1500 = 3000 fits).
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(l.queue_statistics().dropped, 7u);
}

TEST(link, loss_gate_matches_configured_rate) {
  sim::simulator s{123};
  link_config cfg;
  cfg.rate = data_rate::gbps(100);
  cfg.propagation_delay = sim_time::zero();
  cfg.loss_rate = 0.1;
  link l{s, cfg};
  int delivered = 0;
  l.set_sink([&](net::packet) { ++delivered; });
  const int total = 20000;
  // Feed gradually so the queue never overflows.
  for (int i = 0; i < total; ++i) {
    s.schedule(microseconds(i), [&l] { l.send(make_packet(100)); });
  }
  s.run();
  EXPECT_EQ(l.stats().packets_lost, static_cast<std::uint64_t>(total) -
                                        static_cast<std::uint64_t>(delivered));
  EXPECT_NEAR(static_cast<double>(delivered) / total, 0.9, 0.01);
}

TEST(droptail_queue, ecn_marks_ect_packets_over_threshold) {
  droptail_config cfg;
  cfg.capacity_bytes = 100000;
  cfg.ecn_threshold_bytes = 3000;
  droptail_queue q{cfg};
  for (int i = 0; i < 5; ++i) {
    net::packet p = make_packet(1430);
    p.ip.ecn = net::ecn_codepoint::ect0;
    ASSERT_TRUE(q.offer(p));
  }
  // Packets 1-3 arrive at depths 0/1500/3000 (not above K); packets 4-5 see
  // depth > 3000 and are marked.
  EXPECT_EQ(q.stats().ecn_marked, 2u);
  int ce = 0;
  while (auto p = q.take()) {
    if (p->ip.ecn == net::ecn_codepoint::ce) ++ce;
  }
  EXPECT_EQ(ce, 2);
}

TEST(droptail_queue, does_not_mark_non_ect) {
  droptail_config cfg;
  cfg.ecn_threshold_bytes = 1;
  droptail_queue q{cfg};
  net::packet p = make_packet(1000);  // not-ECT
  ASSERT_TRUE(q.offer(p));
  net::packet p2 = make_packet(1000);
  ASSERT_TRUE(q.offer(p2));
  EXPECT_EQ(q.stats().ecn_marked, 0u);
}

TEST(red_queue, marks_proportionally_between_thresholds) {
  rng random{7};
  red_config cfg;
  cfg.capacity_bytes = 1024 * 1024;
  cfg.min_threshold_bytes = 10 * 1024;
  cfg.max_threshold_bytes = 50 * 1024;
  cfg.ewma_weight = 1.0;  // instantaneous averaging for the test
  red_queue q{cfg, random};
  // Fill to ~30 KB: in the marking band.
  int marked = 0;
  for (int i = 0; i < 200; ++i) {
    net::packet p = make_packet(1430);
    p.ip.ecn = net::ecn_codepoint::ect0;
    if (q.offer(p) && p.ip.ecn == net::ecn_codepoint::ce) ++marked;
  }
  EXPECT_GT(q.stats().ecn_marked, 0u);
}

TEST(nic, duplex_attachment_delivers_both_ways) {
  sim::simulator s;
  link_config cfg;
  cfg.rate = data_rate::gbps(40);
  cfg.propagation_delay = microseconds(1);
  duplex_link cable{s, cfg};
  nic a{"a"};
  nic b{"b"};
  attach_duplex(a, b, cable);
  int at_a = 0;
  int at_b = 0;
  a.set_receive_handler([&](net::packet) { ++at_a; });
  b.set_receive_handler([&](net::packet) { ++at_b; });
  a.transmit(make_packet(100));
  b.transmit(make_packet(100));
  b.transmit(make_packet(100));
  s.run();
  EXPECT_EQ(at_b, 1);
  EXPECT_EQ(at_a, 2);
  EXPECT_EQ(a.stats().tx_packets, 1u);
  EXPECT_EQ(a.stats().rx_packets, 2u);
}

TEST(l3_switch, routes_by_destination) {
  l3_switch sw{"sw"};
  std::vector<int> arrived_at;
  const int p0 = sw.add_port([&](net::packet) { arrived_at.push_back(0); });
  const int p1 = sw.add_port([&](net::packet) { arrived_at.push_back(1); });
  const auto addr0 = net::ipv4_addr::from_octets(10, 0, 0, 1);
  const auto addr1 = net::ipv4_addr::from_octets(10, 0, 0, 2);
  sw.set_route(addr0, p0);
  sw.set_route(addr1, p1);
  sw.ingress(make_packet(100, addr1));
  sw.ingress(make_packet(100, addr0));
  sw.ingress(make_packet(100, net::ipv4_addr::from_octets(9, 9, 9, 9)));
  EXPECT_EQ(arrived_at, (std::vector<int>{1, 0}));
  EXPECT_EQ(sw.stats().no_route, 1u);
  EXPECT_EQ(sw.stats().forwarded, 2u);
}

TEST(l3_switch, forwarding_cost_charged_to_core) {
  sim::simulator s;
  sim::cpu_core core{s, "sw0"};
  l3_switch sw{"sw"};
  int delivered = 0;
  const int p0 = sw.add_port([&](net::packet) { ++delivered; });
  const auto addr = net::ipv4_addr::from_octets(10, 0, 0, 1);
  sw.set_route(addr, p0);
  sw.set_forwarding_cost(&core, forwarding_cost{microseconds(1), 0.0});
  sw.ingress(make_packet(100, addr));
  sw.ingress(make_packet(100, addr));
  EXPECT_EQ(delivered, 0);  // not yet: core busy
  s.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(s.now(), microseconds(2));
  EXPECT_EQ(core.busy_time(), microseconds(2));
}

}  // namespace
}  // namespace nk::phys
