// Cross-module integration tests on the full testbed: legacy vs NetKernel
// paths under the same workloads, RPC, churn, and the Figure 5 WAN ordering
// (sanity-level; the bench regenerates the full figure).
#include <gtest/gtest.h>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"

namespace nk {
namespace {

using apps::side;
using apps::testbed;

TEST(legacy_path, bulk_transfer_with_integrity) {
  testbed bed{apps::datacenter_params(11)};
  virt::vm_config cfg;
  cfg.name = "a";
  cfg.guest_stack.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  auto a = bed.add_legacy_vm(side::a, cfg);
  cfg.name = "b";
  auto b = bed.add_legacy_vm(side::b, cfg);

  apps::bulk_sink sink{*b.api, 5001, true};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 2;
  scfg.bytes_per_flow = 4 * 1024 * 1024;
  apps::bulk_sender sender{*a.api, {b.vm->address(), 5001}, scfg};
  sender.start();

  bed.run_for(seconds(3));
  EXPECT_EQ(sink.total_bytes(), 8u * 1024 * 1024);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sink.flows_seen(), 2u);
}

TEST(legacy_path, rpc_latency_is_low_on_datacenter_link) {
  testbed bed{apps::datacenter_params(12)};
  virt::vm_config cfg;
  cfg.name = "client";
  cfg.guest_stack.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  auto client = bed.add_legacy_vm(side::a, cfg);
  cfg.name = "server";
  auto server = bed.add_legacy_vm(side::b, cfg);

  apps::echo_server echo{*server.api, 5002};
  echo.start();
  apps::rpc_client_config rcfg;
  rcfg.request_size = 512;
  rcfg.requests = 200;
  apps::rpc_client rpc{*client.api, bed.sim(), {server.vm->address(), 5002},
                       rcfg};
  rpc.start();

  bed.run_for(seconds(2));
  EXPECT_EQ(rpc.completed(), 200);
  // RTT is 10 us + stack costs; median RPC latency must be < 1 ms.
  EXPECT_LT(rpc.latencies_us().median(), 1000.0);
}

TEST(netkernel_path, rpc_works_through_the_nsm) {
  testbed bed{apps::datacenter_params(13)};
  core::nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::echo_server echo{*server.api, 5002};
  echo.start();
  apps::rpc_client_config rcfg;
  rcfg.request_size = 512;
  rcfg.requests = 100;
  apps::rpc_client rpc{*client.api, bed.sim(),
                       {server.module->config().address, 5002}, rcfg};
  rpc.start();

  bed.run_for(seconds(5));
  EXPECT_EQ(rpc.completed(), 100);
  EXPECT_LT(rpc.latencies_us().median(), 2000.0);
}

TEST(netkernel_path, churn_short_connections_complete) {
  testbed bed{apps::datacenter_params(14)};
  core::nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::echo_server echo{*server.api, 5003};
  echo.start();
  apps::churn_config ccfg;
  ccfg.connections = 50;
  ccfg.message_size = 256;
  apps::churn_client churn{*client.api, bed.sim(),
                           {server.module->config().address, 5003}, ccfg};
  churn.start();

  bed.run_for(seconds(10));
  EXPECT_EQ(churn.completed(), 50);
  EXPECT_GT(churn.completion_us().median(), 0.0);
}

TEST(cross_path, legacy_and_netkernel_tenants_interoperate) {
  // A legacy VM talks to a NetKernel-served VM: the wire protocol is just
  // TCP, so the architectures must interoperate transparently.
  testbed bed{apps::datacenter_params(15)};
  virt::vm_config cfg;
  cfg.name = "legacy";
  cfg.guest_stack.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  auto legacy = bed.add_legacy_vm(side::a, cfg);

  core::nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::bbr);
  nsm_cfg.cc = tcp::cc_algorithm::bbr;
  virt::vm_config vm_cfg;
  vm_cfg.name = "nk";
  auto nk = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*nk.api, 5001, true};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 1;
  scfg.bytes_per_flow = 1024 * 1024;
  apps::bulk_sender sender{*legacy.api,
                           {nk.module->config().address, 5001}, scfg};
  sender.start();

  bed.run_for(seconds(3));
  EXPECT_EQ(sink.total_bytes(), 1024u * 1024);
  EXPECT_TRUE(sink.pattern_ok());
}

// Figure 5 sanity: on the lossy high-BDP WAN, BBR > C-TCP > Cubic. The
// bench regenerates the full figure; this asserts only the ordering.
TEST(wan_ordering, bbr_beats_ctcp_beats_cubic) {
  auto measure = [](tcp::cc_algorithm cc) -> double {
    testbed bed{apps::wan_params(1000 + static_cast<int>(cc))};
    virt::vm_config cfg;
    cfg.name = "sender";
    cfg.os = virt::guest_os::linux_kernel;
    cfg.guest_stack.tcp = apps::wan_tcp(cc);
    cfg.guest_cc = cc;
    auto sender_vm = bed.add_legacy_vm(side::a, cfg);
    cfg.name = "receiver";
    cfg.guest_cc = tcp::cc_algorithm::cubic;
    auto receiver_vm = bed.add_legacy_vm(side::b, cfg);

    apps::bulk_sink sink{*receiver_vm.api, 5001, false};
    sink.start();
    apps::bulk_sender_config scfg;
    scfg.flows = 1;
    scfg.bytes_per_flow = 0;
    apps::bulk_sender sender{*sender_vm.api,
                             {receiver_vm.vm->address(), 5001}, scfg};
    sender.start();

    // Skip 10 s of startup, then average 20 s of steady state (the paper
    // reports a 10 s steady-state average).
    bed.run_for(seconds(10));
    const std::uint64_t at_warmup = sink.total_bytes();
    bed.run_for(seconds(20));
    return rate_of(sink.total_bytes() - at_warmup, seconds(20)).bps() / 1e6;
  };

  const double bbr = measure(tcp::cc_algorithm::bbr);
  const double ctcp = measure(tcp::cc_algorithm::compound);
  const double cubic = measure(tcp::cc_algorithm::cubic);

  EXPECT_GT(bbr, ctcp) << "bbr=" << bbr << " ctcp=" << ctcp;
  EXPECT_GT(ctcp, cubic) << "ctcp=" << ctcp << " cubic=" << cubic;
  EXPECT_GT(bbr, 8.0);    // near the 12 Mb/s line rate
  EXPECT_LT(cubic, 6.0);  // collapsed under random loss
}

TEST(fig4_sanity, nsm_throughput_comparable_to_native) {
  auto measure = [](bool netkernel) -> double {
    testbed bed{apps::datacenter_params(netkernel ? 21 : 22)};
    std::unique_ptr<apps::socket_api> tx_api;
    std::unique_ptr<apps::socket_api> rx_api;
    net::ipv4_addr dst{};

    if (netkernel) {
      core::nsm_config nsm_cfg;
      nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
      virt::vm_config vm_cfg;
      vm_cfg.name = "tx";
      auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
      vm_cfg.name = "rx";
      nsm_cfg.name = "nsm-rx";
      auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
      dst = rx.module->config().address;
      tx_api = std::move(tx.api);
      rx_api = std::move(rx.api);
    } else {
      virt::vm_config cfg;
      cfg.guest_stack.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
      cfg.name = "tx";
      auto tx = bed.add_legacy_vm(side::a, cfg);
      cfg.name = "rx";
      auto rx = bed.add_legacy_vm(side::b, cfg);
      dst = rx.vm->address();
      tx_api = std::move(tx.api);
      rx_api = std::move(rx.api);
    }

    apps::bulk_sink sink{*rx_api, 5001, false};
    sink.start();
    apps::bulk_sender_config scfg;
    scfg.flows = 2;
    scfg.bytes_per_flow = 0;
    scfg.patterned = false;
    apps::bulk_sender sender{*tx_api, {dst, 5001}, scfg};
    sender.start();
    bed.run_for(milliseconds(300));
    return rate_of(sink.total_bytes(), milliseconds(300)).bps() / 1e9;
  };

  const double native = measure(false);
  const double nsm = measure(true);
  // Both within the same ballpark (paper: "virtually same throughput").
  EXPECT_GT(native, 15.0);
  EXPECT_GT(nsm, 15.0);
}

}  // namespace
}  // namespace nk
