// Packet capture: pcap format, text dump, codec round-trip on live traffic.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/capture.hpp"
#include "util/loopback.hpp"

namespace nk::net {
namespace {

packet make_packet(std::uint16_t sport, std::size_t len) {
  packet p;
  p.ip.src = ipv4_addr::from_octets(10, 0, 0, 1);
  p.ip.dst = ipv4_addr::from_octets(10, 0, 0, 2);
  tcp_header h;
  h.src_port = sport;
  h.dst_port = 80;
  h.seq = 100;
  h.flags.ack = true;
  p.l4 = h;
  p.payload = buffer::pattern(len, 0);
  return p;
}

TEST(capture, records_and_decodes) {
  capture cap;
  cap.tap(make_packet(1111, 100), milliseconds(1));
  cap.tap(make_packet(2222, 200), milliseconds(2));
  ASSERT_EQ(cap.size(), 2u);

  auto first = cap.decode(0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().tcp().src_port, 1111);
  EXPECT_EQ(first.value().payload.size(), 100u);
  EXPECT_TRUE(first.value().payload.matches_pattern(0));

  EXPECT_FALSE(cap.decode(5).ok());
}

TEST(capture, caps_and_counts_drops) {
  capture cap{2};
  for (int i = 0; i < 5; ++i) cap.tap(make_packet(1, 10), milliseconds(i));
  EXPECT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap.dropped(), 3u);
  cap.clear();
  EXPECT_EQ(cap.size(), 0u);
  EXPECT_EQ(cap.dropped(), 0u);
}

TEST(capture, text_dump_contains_flow_details) {
  capture cap;
  cap.tap(make_packet(1234, 42), milliseconds(7));
  const std::string dump = cap.text_dump();
  EXPECT_NE(dump.find("10.0.0.1:1234"), std::string::npos);
  EXPECT_NE(dump.find("len=42"), std::string::npos);
  EXPECT_NE(dump.find("0.007"), std::string::npos);
}

TEST(capture, pcap_file_has_valid_header_and_lengths) {
  capture cap;
  cap.tap(make_packet(1, 64), seconds(1));
  cap.tap(make_packet(2, 128), seconds(2));
  const std::string path = "/tmp/nk_capture_test.pcap";
  ASSERT_TRUE(cap.write_pcap(path));

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good());
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), 4);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  in.seekg(20);
  std::uint32_t linktype = 0;
  in.read(reinterpret_cast<char*>(&linktype), 4);
  EXPECT_EQ(linktype, 101u);  // LINKTYPE_RAW

  // First record header: ts_sec must be 1, lengths must match the bytes.
  std::uint32_t ts_sec = 0;
  in.read(reinterpret_cast<char*>(&ts_sec), 4);
  EXPECT_EQ(ts_sec, 1u);
  in.seekg(4, std::ios::cur);
  std::uint32_t incl = 0;
  in.read(reinterpret_cast<char*>(&incl), 4);
  EXPECT_EQ(incl, cap.records()[0].bytes.size());
  std::remove(path.c_str());
}

TEST(capture, link_tap_sees_live_tcp_handshake) {
  test::loopback net{test::lan_params()};
  capture cap;
  net.cable.forward().set_tap(
      [&](const packet& p) { cap.tap(p, net.sim.now()); });

  ASSERT_TRUE(net.b.tcp_listen(5001).ok());
  (void)net.a.tcp_connect(net.addr_b(5001));
  net.run_for(milliseconds(10));

  ASSERT_GE(cap.size(), 2u);  // SYN + final handshake ACK at least
  auto syn = cap.decode(0);
  ASSERT_TRUE(syn.ok());
  EXPECT_TRUE(syn.value().tcp().flags.syn);
  EXPECT_FALSE(syn.value().tcp().flags.ack);
  // Every captured frame must survive the codec round trip.
  for (std::size_t i = 0; i < cap.size(); ++i) {
    EXPECT_TRUE(cap.decode(i).ok()) << "packet " << i;
  }
}

TEST(capture, sack_blocks_survive_capture) {
  // Drop one data segment so the receiver emits SACK-bearing ACKs; the
  // capture on the reverse path must decode them.
  auto params = test::lan_params(7);
  test::loopback net{params};
  capture cap;
  net.cable.backward().set_tap(
      [&](const packet& p) { cap.tap(p, net.sim.now()); });

  stack::socket_id listener = net.b.tcp_listen(5001).value();
  stack::socket_id server_conn = 0;
  net.b.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.type == stack::socket_event_type::accept_ready) {
      server_conn = net.b.accept(listener).value();
    } else if (ev.type == stack::socket_event_type::readable) {
      while (auto r = net.b.recv(server_conn, 1 << 20)) {
      }
    }
  });
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(5));
  // Burst with a loss in the middle.
  net.cable.forward().set_loss_rate(0.2);
  (void)net.a.send(conn, buffer::pattern(64 * 1024, 0));
  net.run_for(milliseconds(5));
  net.cable.forward().set_loss_rate(0.0);
  net.run_for(milliseconds(100));

  bool saw_sack = false;
  for (std::size_t i = 0; i < cap.size(); ++i) {
    auto p = cap.decode(i);
    ASSERT_TRUE(p.ok());
    if (p.value().is_tcp() && p.value().tcp().sack_count > 0) saw_sack = true;
  }
  EXPECT_TRUE(saw_sack);
}

}  // namespace
}  // namespace nk::net
