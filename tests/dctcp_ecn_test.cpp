// DCTCP end-to-end over an ECN-marking bottleneck (the §5 scenario: "A
// container running a Spark task may use DCTCP for its traffic"): DCTCP
// must hold throughput while keeping the bottleneck queue near the marking
// threshold K, where a loss-based controller fills the whole buffer.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "util/loopback.hpp"

namespace nk {
namespace {

struct ecn_run {
  double goodput_gbps = 0;
  double mean_queue_bytes = 0;
  std::uint64_t marks = 0;
  std::uint64_t drops = 0;
};

ecn_run run_flow(tcp::cc_algorithm cc) {
  test::loopback_params params = test::lan_params(314);
  params.wire.rate = data_rate::gbps(10);
  params.wire.propagation_delay = microseconds(25);
  params.wire.queue.capacity_bytes = 512 * 1024;
  params.wire.queue.ecn_threshold_bytes = 64 * 1024;  // DCTCP K
  tcp::tcp_config t = params.tcp_a;
  t.cc = cc;
  t.send_buffer = 4 * 1024 * 1024;
  params.tcp_a = t;
  tcp::tcp_config tb = params.tcp_b;
  tb.cc = cc;  // receiver stack mirrors (affects ECN negotiation only)
  params.tcp_b = tb;
  test::loopback net{params};

  stack::socket_id listener = net.b.tcp_listen(5001).value();
  stack::socket_id server_conn = 0;
  std::uint64_t received = 0;
  net.b.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.type == stack::socket_event_type::accept_ready) {
      server_conn = net.b.accept(listener).value();
    } else if (ev.type == stack::socket_event_type::readable) {
      while (auto r = net.b.recv(server_conn, 1 << 20)) {
        received += r.value().size();
      }
    }
  });

  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  auto push = [&] {
    while (net.a.send(conn, buffer::zeroed(64 * 1024)).ok()) {
    }
  };
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && (ev.type == stack::socket_event_type::connected ||
                            ev.type == stack::socket_event_type::writable)) {
      push();
    }
  });

  // Sample the bottleneck queue during steady state.
  running_stats queue_depth;
  net.run_for(milliseconds(50));  // warm-up
  const std::uint64_t at_warm = received;
  for (int i = 0; i < 200; ++i) {
    net.run_for(milliseconds(1));
    queue_depth.add(static_cast<double>(net.cable.forward().queue_bytes()));
  }

  ecn_run out;
  out.goodput_gbps =
      rate_of(received - at_warm, milliseconds(200)).bps() / 1e9;
  out.mean_queue_bytes = queue_depth.mean();
  out.marks = net.cable.forward().queue_statistics().ecn_marked;
  out.drops = net.cable.forward().queue_statistics().dropped;
  return out;
}

TEST(dctcp_e2e, holds_throughput_with_shallow_queue) {
  const ecn_run dctcp = run_flow(tcp::cc_algorithm::dctcp);
  EXPECT_GT(dctcp.goodput_gbps, 8.5);      // ~line rate on 10G
  EXPECT_GT(dctcp.marks, 0u);              // ECN actually in play
  EXPECT_EQ(dctcp.drops, 0u);              // never fills the buffer
  // Queue hovers near K (64 KB), far below the 512 KB capacity.
  EXPECT_LT(dctcp.mean_queue_bytes, 3.0 * 64 * 1024);
}

TEST(dctcp_e2e, loss_based_cubic_fills_the_buffer_instead) {
  const ecn_run cubic = run_flow(tcp::cc_algorithm::cubic);
  const ecn_run dctcp = run_flow(tcp::cc_algorithm::dctcp);
  EXPECT_GT(cubic.goodput_gbps, 8.5);  // cubic also reaches line rate...
  // ...but bufferbloats: it rides far deeper in the queue than DCTCP.
  EXPECT_GT(cubic.mean_queue_bytes, 2.0 * dctcp.mean_queue_bytes);
  EXPECT_EQ(cubic.marks, 0u);  // no ECN negotiation without DCTCP
}

}  // namespace
}  // namespace nk
