// queue_pump unit tests (polling vs batched-interrupt semantics) and
// accounting/pricing unit tests.
#include <gtest/gtest.h>

#include "core/accounting.hpp"
#include "core/notification.hpp"
#include "sim/simulator.hpp"

namespace nk::core {
namespace {

TEST(queue_pump, polling_fires_at_fixed_cadence) {
  sim::simulator s;
  int drains = 0;
  notify_config cfg;
  cfg.kind = notify_config::mode::polling;
  cfg.poll_interval = microseconds(10);
  queue_pump pump{s, cfg, [&] {
                    ++drains;
                    return std::size_t{0};
                  }};
  pump.start();
  s.run_until(microseconds(105));
  EXPECT_EQ(drains, 10);
  EXPECT_EQ(pump.wakeups(), 10u);
  pump.stop();
  s.run_until(microseconds(205));
  EXPECT_EQ(drains, 10);  // stopped pumps stop polling
}

TEST(queue_pump, polling_ignores_notify) {
  sim::simulator s;
  int drains = 0;
  notify_config cfg;
  cfg.kind = notify_config::mode::polling;
  cfg.poll_interval = milliseconds(10);
  queue_pump pump{s, cfg, [&] {
                    ++drains;
                    return std::size_t{1};
                  }};
  pump.start();
  pump.notify();  // no effect in polling mode
  s.run_until(milliseconds(5));
  EXPECT_EQ(drains, 0);
}

TEST(queue_pump, batched_interrupt_coalesces_doorbells) {
  sim::simulator s;
  int drains = 0;
  notify_config cfg;
  cfg.kind = notify_config::mode::batched_interrupt;
  cfg.interrupt_delay = microseconds(5);
  queue_pump pump{s, cfg, [&] {
                    ++drains;
                    return std::size_t{3};
                  }};
  pump.start();
  // Many doorbells inside one coalescing window: exactly one drain.
  for (int i = 0; i < 50; ++i) pump.notify();
  s.run_until(microseconds(10));
  EXPECT_EQ(drains, 1);
  EXPECT_EQ(pump.items_drained(), 3u);

  // After the drain a fresh doorbell schedules a fresh wake-up.
  pump.notify();
  s.run_until(microseconds(20));
  EXPECT_EQ(drains, 2);
}

TEST(queue_pump, batched_interrupt_idle_without_doorbell) {
  sim::simulator s;
  int drains = 0;
  notify_config cfg;
  cfg.kind = notify_config::mode::batched_interrupt;
  queue_pump pump{s, cfg, [&] {
                    ++drains;
                    return std::size_t{0};
                  }};
  pump.start();
  s.run_until(seconds(1));
  EXPECT_EQ(drains, 0);  // no timers burn when nothing rings
}

TEST(queue_pump, notify_before_start_is_ignored) {
  sim::simulator s;
  int drains = 0;
  notify_config cfg;
  cfg.kind = notify_config::mode::batched_interrupt;
  queue_pump pump{s, cfg, [&] {
                    ++drains;
                    return std::size_t{0};
                  }};
  pump.notify();
  s.run_until(milliseconds(1));
  EXPECT_EQ(drains, 0);
}

// --- accounting / pricing ------------------------------------------------------------

TEST(accounting, charge_formulas) {
  nsm_usage usage;
  usage.wall_time = seconds(3600);  // one hour
  usage.cpu_busy = seconds(1800);   // half a core-hour of cycles
  usage.core_count = 2;
  usage.memory_bytes = 1024ull * 1024 * 1024;
  usage.bytes_moved = 10ull * 1000 * 1000 * 1000;  // 10 GB
  usage.guaranteed_gbps = 5.0;

  price_sheet sheet;
  EXPECT_DOUBLE_EQ(charge(pricing_model::per_instance, usage, sheet),
                   sheet.per_instance_hour);
  EXPECT_DOUBLE_EQ(charge(pricing_model::per_core, usage, sheet),
                   2 * sheet.per_core_hour);
  EXPECT_DOUBLE_EQ(charge(pricing_model::usage_based, usage, sheet),
                   1800 * sheet.per_cpu_second + 10 * sheet.per_gb_moved);
  EXPECT_DOUBLE_EQ(charge(pricing_model::sla_based, usage, sheet),
                   5.0 * sheet.per_gbps_guaranteed);
}

TEST(accounting, idle_instance_still_pays_flat_rate_but_not_usage) {
  nsm_usage usage;
  usage.wall_time = seconds(7200);
  usage.core_count = 1;
  EXPECT_GT(charge(pricing_model::per_instance, usage), 0.0);
  EXPECT_DOUBLE_EQ(charge(pricing_model::usage_based, usage), 0.0);
}

TEST(accounting, invoice_line_mentions_model_and_charge) {
  nsm_usage usage;
  usage.wall_time = seconds(60);
  usage.core_count = 1;
  const std::string line = invoice_line(pricing_model::per_core, usage);
  EXPECT_NE(line.find("per_core"), std::string::npos);
  EXPECT_NE(line.find('$'), std::string::npos);
}

}  // namespace
}  // namespace nk::core
