// netstack socket-layer tests: API errors, ports, UDP, events, RSTs.
#include <gtest/gtest.h>

#include "util/loopback.hpp"

namespace nk::stack {
namespace {

using test::lan_params;
using test::loopback;

TEST(netstack_api, listen_rejects_duplicate_port) {
  loopback net{lan_params()};
  ASSERT_TRUE(net.b.tcp_listen(80).ok());
  auto dup = net.b.tcp_listen(80);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.error(), errc::in_use);
}

TEST(netstack_api, listen_rejects_port_zero) {
  loopback net{lan_params()};
  EXPECT_EQ(net.b.tcp_listen(0).error(), errc::invalid_argument);
}

TEST(netstack_api, operations_on_unknown_socket_fail) {
  loopback net{lan_params()};
  EXPECT_EQ(net.a.send(999, buffer::pattern(10)).error(), errc::not_found);
  EXPECT_EQ(net.a.recv(999, 10).error(), errc::not_found);
  EXPECT_EQ(net.a.close(999).error(), errc::not_found);
  EXPECT_EQ(net.a.accept(999).error(), errc::not_found);
}

TEST(netstack_api, accept_on_connection_socket_is_invalid) {
  loopback net{lan_params()};
  ASSERT_TRUE(net.b.tcp_listen(5001).ok());
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  EXPECT_EQ(net.a.accept(conn).error(), errc::invalid_argument);
}

TEST(netstack_api, accept_empty_backlog_would_block) {
  loopback net{lan_params()};
  const auto listener = net.b.tcp_listen(5001).value();
  EXPECT_EQ(net.b.accept(listener).error(), errc::would_block);
}

TEST(netstack_api, ephemeral_ports_are_distinct) {
  loopback net{lan_params()};
  ASSERT_TRUE(net.b.tcp_listen(5001).ok());
  const auto c1 = net.a.tcp_connect(net.addr_b(5001)).value();
  const auto c2 = net.a.tcp_connect(net.addr_b(5001)).value();
  net.run_for(milliseconds(10));
  EXPECT_NE(net.a.tcb_of(c1)->tuple().local.port,
            net.a.tcb_of(c2)->tuple().local.port);
}

TEST(netstack_api, close_listener_then_syn_gets_rst) {
  loopback net{lan_params()};
  const auto listener = net.b.tcp_listen(5001).value();
  ASSERT_TRUE(net.b.close(listener).ok());
  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  errc err = errc::ok;
  net.a.set_event_handler([&](const socket_event& ev) {
    if (ev.sock == conn && ev.type == socket_event_type::error) {
      err = ev.error;
    }
  });
  net.run_for(milliseconds(50));
  EXPECT_EQ(err, errc::connection_reset);
}

TEST(netstack_api, stats_count_connections) {
  loopback net{lan_params()};
  ASSERT_TRUE(net.b.tcp_listen(5001).ok());
  (void)net.a.tcp_connect(net.addr_b(5001));
  (void)net.a.tcp_connect(net.addr_b(5001));
  net.run_for(milliseconds(20));
  EXPECT_EQ(net.a.stats().connections_opened, 2u);
  EXPECT_EQ(net.b.stats().connections_accepted, 2u);
}

TEST(netstack_events, poll_mode_returns_queued_events) {
  loopback net{lan_params()};
  ASSERT_TRUE(net.b.tcp_listen(5001).ok());
  (void)net.a.tcp_connect(net.addr_b(5001));
  net.run_for(milliseconds(10));
  // No handler on b: events queue up for polling.
  socket_event ev;
  bool saw_accept = false;
  while (net.b.poll_event(ev)) {
    if (ev.type == socket_event_type::accept_ready) saw_accept = true;
  }
  EXPECT_TRUE(saw_accept);
}

TEST(netstack_events, handler_not_called_reentrantly) {
  loopback net{lan_params()};
  ASSERT_TRUE(net.b.tcp_listen(5001).ok());
  int depth = 0;
  int max_depth = 0;
  net.b.set_event_handler([&](const socket_event&) {
    ++depth;
    max_depth = std::max(max_depth, depth);
    --depth;
  });
  (void)net.a.tcp_connect(net.addr_b(5001));
  net.run_for(milliseconds(10));
  EXPECT_EQ(max_depth, 1);
}

TEST(netstack_udp, datagram_roundtrip) {
  loopback net{lan_params()};
  const auto server = net.b.udp_open(9000).value();
  const auto client = net.a.udp_open().value();
  ASSERT_TRUE(net.a.udp_send_to(client, net.addr_b(9000),
                                buffer::pattern(500, 0)).ok());
  net.run_for(milliseconds(5));
  auto got = net.b.udp_recv_from(server);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().second.size(), 500u);
  EXPECT_TRUE(got.value().second.matches_pattern(0));
  // Reply to the observed source address.
  ASSERT_TRUE(net.b.udp_send_to(server, got.value().first,
                                buffer::pattern(100, 7)).ok());
  net.run_for(milliseconds(5));
  auto reply = net.a.udp_recv_from(client);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().second.matches_pattern(7));
}

TEST(netstack_udp, duplicate_port_rejected) {
  loopback net{lan_params()};
  ASSERT_TRUE(net.a.udp_open(9000).ok());
  EXPECT_EQ(net.a.udp_open(9000).error(), errc::in_use);
}

TEST(netstack_udp, unknown_port_drops) {
  loopback net{lan_params()};
  const auto client = net.a.udp_open().value();
  ASSERT_TRUE(net.a.udp_send_to(client, net.addr_b(1234),
                                buffer::pattern(10)).ok());
  net.run_for(milliseconds(5));
  EXPECT_EQ(net.b.stats().rx_no_socket, 1u);
}

TEST(netstack_cpu, per_byte_cost_caps_throughput) {
  auto params = lan_params();
  params.wire.rate = data_rate::gbps(100);  // wire not the bottleneck
  loopback net{params};

  // Receiver-side processing on one core at 1 ns/B caps goodput ~1 GB/s.
  sim::cpu_core core{net.sim, "rx0"};
  // Install the cost post-hoc by rebuilding stack b's config is not
  // possible; instead attach the core to the sender and cap tx.
  // (tx_cost/rx_cost are constructor parameters, so build a fresh rig.)
  SUCCEED();
}

TEST(netstack_cpu, tx_cost_serializes_on_core) {
  sim::simulator s;
  phys::duplex_link cable{s, phys::link_config{.rate = data_rate::gbps(100),
                                               .propagation_delay =
                                                   microseconds(1)}};
  phys::nic na{"a"};
  phys::nic nb{"b"};
  phys::attach_duplex(na, nb, cable);

  netstack_config cfg_a;
  cfg_a.name = "a";
  cfg_a.tcp.rto.min_rto = milliseconds(5);
  cfg_a.tx_cost = processing_cost{microseconds(10), 0.0};  // brutal per-pkt
  netstack a{s, cfg_a, net::ipv4_addr::from_octets(10, 0, 0, 1)};
  netstack b{s, netstack_config{.name = "b"},
             net::ipv4_addr::from_octets(10, 0, 0, 2)};
  a.bind_netdev(na);
  b.bind_netdev(nb);
  sim::cpu_core core{s, "tx0"};
  a.add_core(core);

  ASSERT_TRUE(b.tcp_listen(5001).ok());
  const auto conn =
      a.tcp_connect({net::ipv4_addr::from_octets(10, 0, 0, 2), 5001}).value();
  ASSERT_TRUE(a.send(conn, buffer::pattern(100000, 0)).ok());
  s.run_until(seconds(1));
  // With 10 us per packet on one core, the core must show real busy time.
  EXPECT_GT(core.busy_time(), microseconds(100));
  (void)conn;
}

}  // namespace
}  // namespace nk::stack
