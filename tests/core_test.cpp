// NetKernel core tests: the full GuestLib -> CoreEngine -> ServiceLib -> NSM
// path on a two-host testbed, connection mapping, flow-control credit,
// per-socket stack selection, multiplexing, SLA enforcement, notification
// modes, and accounting.
#include <gtest/gtest.h>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"
#include "core/accounting.hpp"

namespace nk::core {
namespace {

using apps::side;
using apps::testbed;

// A NetKernel tenant on side a talking to a NetKernel tenant on side b.
struct nk_pair {
  explicit nk_pair(tcp::cc_algorithm cc = tcp::cc_algorithm::cubic,
                   std::uint64_t seed = 1)
      : bed{[&] {
          auto p = apps::datacenter_params(seed);
          return p;
        }()} {
    nsm_config nsm_cfg;
    nsm_cfg.tcp = apps::datacenter_tcp(cc);
    nsm_cfg.cc = cc;

    virt::vm_config vm_cfg;
    vm_cfg.name = "tenant-a";
    client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
    vm_cfg.name = "tenant-b";
    nsm_cfg.name = "nsm-b";
    server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  }

  testbed bed;
  apps::nk_tenant client;
  apps::nk_tenant server;
};

TEST(netkernel_path, connect_and_echo_roundtrip) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  auto& glib_c = *rig.client.glib;

  // Server: listen and echo one message.
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  std::uint32_t server_conn = 0;
  glib_s.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      server_conn = glib_s.nk_accept(lfd).value();
    } else if (fd == server_conn &&
               t == stack::socket_event_type::readable) {
      while (auto r = glib_s.nk_recv(server_conn, 1 << 20)) {
        (void)glib_s.nk_send(server_conn, std::move(r).value());
      }
    }
  });

  // Client: connect, send, await echo.
  const auto cfd = glib_c.nk_socket().value();
  buffer_chain echoed;
  bool connected = false;
  glib_c.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd != cfd) return;
    if (t == stack::socket_event_type::connected) {
      connected = true;
      (void)glib_c.nk_send(cfd, buffer::pattern(50000, 0));
    } else if (t == stack::socket_event_type::readable) {
      while (auto r = glib_c.nk_recv(cfd, 1 << 20)) {
        echoed.append(std::move(r).value());
      }
    }
  });
  ASSERT_TRUE(glib_c
                  .nk_connect(cfd, {rig.server.module->config().address, 7000})
                  .ok());

  rig.bed.run_for(seconds(2));
  EXPECT_TRUE(connected);
  ASSERT_EQ(echoed.size(), 50000u);
  EXPECT_TRUE(echoed.pop(50000).matches_pattern(0));

  // The mapping table was exercised in both directions.
  EXPECT_GT(rig.bed.netkernel(side::a).stats().nqes_forwarded, 0u);
  EXPECT_GT(rig.bed.netkernel(side::b).stats().accept_fds_minted, 0u);
}

TEST(netkernel_path, bulk_transfer_off_the_unified_api) {
  nk_pair rig;
  apps::bulk_sink sink{*rig.server.api, 7001, /*validate=*/true};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 2;
  cfg.bytes_per_flow = 2 * 1024 * 1024;
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();

  rig.bed.run_for(seconds(5));
  EXPECT_EQ(sink.total_bytes(), 4u * 1024 * 1024);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sender.flows_done(), 2);
}

TEST(netkernel_path, per_socket_congestion_control_override) {
  nk_pair rig{tcp::cc_algorithm::cubic};
  auto& glib = *rig.client.glib;
  const auto fd = glib.nk_socket().value();
  ASSERT_TRUE(glib.nk_setsockopt(
                      fd, nk_option::congestion_control,
                      static_cast<std::uint64_t>(tcp::cc_algorithm::bbr))
                  .ok());
  // Server side listener.
  auto& glib_s = *rig.server.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());

  ASSERT_TRUE(
      glib.nk_connect(fd, {rig.server.module->config().address, 7000}).ok());
  rig.bed.run_for(milliseconds(100));

  // Find the NSM-side tcb and confirm it mounts BBR despite the NSM default
  // being Cubic — "any stack independent of the guest kernel".
  auto& stack = rig.client.module->stack();
  bool found_bbr = false;
  for (stack::socket_id s = 1; s < 20; ++s) {
    if (auto* t = stack.tcb_of(s)) {
      if (t->cc().name() == "bbr") found_bbr = true;
    }
  }
  EXPECT_TRUE(found_bbr);
}

TEST(netkernel_path, send_credit_backpressures_application) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  // Server accepts but never reads: the pipeline must fill and push back.

  glib_s.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      (void)glib_s.nk_accept(lfd);
    }
  });

  auto& glib_c = *rig.client.glib;
  const auto fd = glib_c.nk_socket().value();
  std::uint64_t accepted = 0;
  bool hit_block = false;
  glib_c.set_event_handler([&](std::uint32_t f, stack::socket_event_type t,
                               errc) {
    if (f != fd || t != stack::socket_event_type::connected) return;
    while (true) {
      auto r = glib_c.nk_send(fd, buffer::pattern(256 * 1024, accepted));
      if (!r) {
        hit_block = true;
        break;
      }
      accepted += r.value();
      if (accepted > 512 * 1024 * 1024) break;  // runaway guard
    }
  });
  ASSERT_TRUE(
      glib_c.nk_connect(fd, {rig.server.module->config().address, 7000}).ok());

  rig.bed.run_for(seconds(1));
  EXPECT_TRUE(hit_block);
  // Way below the runaway guard: credit + buffers bound the pipeline.
  EXPECT_LT(accepted, 64u * 1024 * 1024);
}

TEST(netkernel_multiplexing, one_nsm_serves_two_vms) {
  auto params = apps::datacenter_params(7);
  testbed bed{params};

  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.cores = 2;

  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "t2";
  auto t2 = bed.attach_netkernel_vm(side::a, vm_cfg, *t1.module);
  EXPECT_EQ(t1.module, t2.module);

  nsm_config server_cfg;
  server_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  vm_cfg.name = "server";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, server_cfg);

  apps::bulk_sink sink{*server.api, 7001, true};
  sink.start();

  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 1024 * 1024;
  apps::bulk_sender s1{*t1.api, {server.module->config().address, 7001}, cfg};
  apps::bulk_sender s2{*t2.api, {server.module->config().address, 7001}, cfg};
  s1.start();
  s2.start();

  bed.run_for(seconds(5));
  EXPECT_EQ(sink.total_bytes(), 2u * 1024 * 1024);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sink.flows_seen(), 2u);
}

TEST(netkernel_isolation, channels_use_distinct_pool_keys) {
  auto params = apps::datacenter_params(7);
  testbed bed{params};
  nsm_config nsm_cfg;
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "t2";
  auto t2 = bed.attach_netkernel_vm(side::a, vm_cfg, *t1.module);

  auto* ch1 = bed.netkernel(side::a).channel_of(t1.vm->id());
  auto* ch2 = bed.netkernel(side::a).channel_of(t2.vm->id());
  ASSERT_NE(ch1, nullptr);
  ASSERT_NE(ch2, nullptr);
  EXPECT_NE(ch1->pool.key(), ch2->pool.key());

  // A descriptor from tenant 2's pool must be rejected by tenant 1's pool.
  auto chunk = ch2->pool.alloc();
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(ch1->pool.readable(shm::data_descriptor{chunk.value(), 0, 16})
                .error(),
            errc::permission_denied);
}

TEST(netkernel_sla, rate_cap_throttles_tenant) {
  nk_pair rig;
  rig.bed.netkernel(side::a).sla().set_tenant(
      rig.client.vm->id(),
      sla_spec{.rate_cap = data_rate::gbps(1), .burst_bytes = 256 * 1024});

  apps::bulk_sink sink{*rig.server.api, 7001, false};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 0;  // unbounded
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();

  rig.bed.run_for(seconds(1));
  const auto goodput = rate_of(sink.total_bytes(), seconds(1));
  // Capped at 1 Gb/s on a 40 Gb/s path (generous tolerance for burst).
  EXPECT_LT(goodput.bps(), 1.4e9);
  EXPECT_GT(goodput.bps(), 0.5e9);
  EXPECT_GT(rig.bed.netkernel(side::a)
                .sla()
                .usage_of(rig.client.vm->id())
                .throttle_events,
            0u);
}

TEST(netkernel_accounting, pricing_models_differ) {
  nk_pair rig;
  apps::bulk_sink sink{*rig.server.api, 7001, false};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 4 * 1024 * 1024;
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();
  rig.bed.run_for(seconds(2));

  auto usage = measure(*rig.client.module, rig.bed.sim().now(), 5.0);
  usage.bytes_moved = sink.total_bytes();
  EXPECT_GT(usage.cpu_busy, sim_time::zero());

  const double flat = charge(pricing_model::per_instance, usage);
  const double metered = charge(pricing_model::usage_based, usage);
  const double sla = charge(pricing_model::sla_based, usage);
  EXPECT_GT(flat, 0.0);
  EXPECT_GT(metered, 0.0);
  EXPECT_GT(sla, 0.0);
  EXPECT_FALSE(invoice_line(pricing_model::usage_based, usage).empty());
}

TEST(netkernel_datapath, sriov_nsm_bypasses_the_software_switch) {
  nk_pair rig;  // default NSMs are SR-IOV VFs
  apps::bulk_sink sink{*rig.server.api, 7001, false};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 512 * 1024;
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();
  rig.bed.run_for(seconds(1));
  ASSERT_EQ(sink.total_bytes(), 512u * 1024);
  // Every forwarded packet took the embedded (hardware) path.
  const auto& sw = rig.bed.host(apps::side::a).overlay_switch().stats();
  EXPECT_GT(sw.embedded_forwards, 0u);
  EXPECT_EQ(sw.software_forwards, 0u);
}

TEST(netkernel_datapath, non_sriov_nsm_pays_the_software_switch) {
  auto params = apps::datacenter_params(8);
  apps::testbed bed{params};
  core::nsm_config nsm_cfg;
  nsm_cfg.sriov = false;  // software vSwitch path
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "a";
  auto a = bed.add_netkernel_vm(apps::side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "b";
  nsm_cfg.name = "nsm-b";
  auto b = bed.add_netkernel_vm(apps::side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*b.api, 7001, false};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 256 * 1024;
  apps::bulk_sender sender{*a.api, {b.module->config().address, 7001}, cfg};
  sender.start();
  bed.run_for(seconds(1));
  ASSERT_EQ(sink.total_bytes(), 256u * 1024);
  EXPECT_GT(bed.host(apps::side::a).overlay_switch().stats().software_forwards,
            0u);
}

TEST(netkernel_notification, batched_interrupt_mode_works_end_to_end) {
  auto params = apps::datacenter_params(3);
  params.netkernel.notification.kind =
      notify_config::mode::batched_interrupt;
  params.netkernel.notification.interrupt_delay = microseconds(3);
  testbed bed{params};

  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "a";
  auto a = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "b";
  nsm_cfg.name = "nsm-b";
  auto b = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*b.api, 7001, true};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 1024 * 1024;
  apps::bulk_sender sender{*a.api, {b.module->config().address, 7001}, cfg};
  sender.start();

  bed.run_for(seconds(5));
  EXPECT_EQ(sink.total_bytes(), 1024u * 1024);
  EXPECT_TRUE(sink.pattern_ok());
}

TEST(netkernel_guestlib, epoll_reports_ready_sets) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  const auto epfd = glib_s.nk_epoll_create().value();
  ASSERT_TRUE(glib_s.nk_epoll_add(epfd, lfd).ok());

  auto& glib_c = *rig.client.glib;
  const auto cfd = glib_c.nk_socket().value();
  ASSERT_TRUE(
      glib_c.nk_connect(cfd, {rig.server.module->config().address, 7000}).ok());
  rig.bed.run_for(milliseconds(100));

  // Listener readable (accept pending) via epoll.
  auto ready = glib_s.nk_epoll_wait(epfd);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].fd, lfd);
  EXPECT_TRUE(ready[0].readable);

  const auto conn = glib_s.nk_accept(lfd).value();
  ASSERT_TRUE(glib_s.nk_epoll_add(epfd, conn).ok());
  ASSERT_TRUE(glib_s.nk_epoll_del(epfd, lfd).ok());

  (void)glib_c.nk_send(cfd, buffer::pattern(100, 0));
  rig.bed.run_for(milliseconds(100));
  ready = glib_s.nk_epoll_wait(epfd);
  bool conn_readable = false;
  for (const auto& ev : ready) {
    if (ev.fd == conn && ev.readable) conn_readable = true;
  }
  EXPECT_TRUE(conn_readable);
}

TEST(netkernel_guestlib, close_releases_mapping_and_chunks) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  glib_s.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      (void)glib_s.nk_accept(lfd);
    }
  });

  auto& glib_c = *rig.client.glib;
  const auto fd = glib_c.nk_socket().value();
  ASSERT_TRUE(
      glib_c.nk_connect(fd, {rig.server.module->config().address, 7000}).ok());
  rig.bed.run_for(milliseconds(50));
  ASSERT_TRUE(glib_c.nk_send(fd, buffer::pattern(8192, 0)).ok());
  rig.bed.run_for(milliseconds(50));
  ASSERT_TRUE(glib_c.nk_close(fd).ok());
  rig.bed.run_for(milliseconds(500));

  auto* ch = rig.bed.netkernel(side::a).channel_of(rig.client.vm->id());
  // All chunks must have come back to the free list.
  EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
  EXPECT_GT(rig.bed.netkernel(side::a).stats().mappings_removed, 0u);
}

// Tiny rings (depth 8) force every queue in the pipeline to overflow, and
// an abrupt mid-stream close adds unroutable events on top. Afterward the
// failure-accounting invariant must hold on both hosts: all chunks back in
// the pool, no stuck flows, every traced nqe either delivered or visible in
// the drop counters.
TEST(netkernel_backpressure, tiny_rings_lose_no_nqes_or_chunks) {
  auto params = apps::datacenter_params(7);
  params.netkernel.channel.queues.depth = 8;
  params.netkernel.overflow_limit = 64;
  params.netkernel.trace.enabled = true;
  params.netkernel.trace.sample_rate = 1.0;
  params.netkernel.trace.max_active = 1 << 16;
  params.netkernel.trace.max_spans = 1 << 17;
  testbed bed{params};

  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.cc = tcp::cc_algorithm::cubic;
  virt::vm_config vm_cfg;
  vm_cfg.name = "tenant-a";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "tenant-b";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  // Workload 1: bulk transfer, 2 flows x 1 MB, validated end to end.
  apps::bulk_sink sink{*server.api, 7001, /*validate=*/true};
  sink.start();
  apps::bulk_sender_config bcfg;
  bcfg.flows = 2;
  bcfg.bytes_per_flow = 1024 * 1024;
  apps::bulk_sender sender{*client.api,
                           {server.module->config().address, 7001}, bcfg};
  sender.start();

  // Workload 2, on its own tenant pair (the unified API above owns the
  // first pair's event handlers): the server streams at the client, which
  // closes after the first readable event — the rest of the stream arrives
  // for a torn-down mapping and must be recycled, not leaked.
  vm_cfg.name = "tenant-c";
  nsm_cfg.name = "nsm-c";
  auto client2 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "tenant-d";
  nsm_cfg.name = "nsm-d";
  auto server2 = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  auto& glib_s = *server2.glib;
  auto& glib_c = *client2.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7002).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  std::uint32_t sconn = 0;
  glib_s.set_event_handler(
      [&](std::uint32_t fd, stack::socket_event_type t, errc) {
        if (fd == lfd && t == stack::socket_event_type::accept_ready) {
          sconn = glib_s.nk_accept(lfd).value();
          (void)glib_s.nk_send(sconn, buffer::pattern(512 * 1024, 1));
        } else if (fd == sconn && t == stack::socket_event_type::writable) {
          (void)glib_s.nk_send(sconn, buffer::pattern(64 * 1024, 1));
        }
      });
  const auto cfd = glib_c.nk_socket().value();
  bool closed = false;
  glib_c.set_event_handler(
      [&](std::uint32_t fd, stack::socket_event_type t, errc) {
        if (fd == cfd && t == stack::socket_event_type::readable && !closed) {
          closed = true;
          (void)glib_c.nk_close(cfd);
        }
      });
  ASSERT_TRUE(
      glib_c.nk_connect(cfd, {server2.module->config().address, 7002}).ok());

  bed.run_for(seconds(5));
  EXPECT_TRUE(closed);

  // No permanently stuck flows: the bulk transfer ran to completion through
  // depth-8 rings.
  EXPECT_EQ(sink.total_bytes(), 2u * 1024 * 1024);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sender.flows_done(), 2);

  // Zero chunk leaks on every channel of both hosts.
  for (auto* ce : {&bed.netkernel(side::a), &bed.netkernel(side::b)}) {
    for (const auto vm : ce->attached_vms()) {
      auto* ch = ce->channel_of(vm);
      EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
    }
  }

  // The tiny rings must actually have exercised the overflow machinery.
  const double deferred =
      bed.netkernel(side::a).metrics().value_of("engine_nqes_deferred").value() +
      bed.netkernel(side::b).metrics().value_of("engine_nqes_deferred").value();
  EXPECT_GT(deferred, 0.0);

  // Failure accounting: with every nqe traced (sample_rate 1, no tracer
  // overflow), each loss to unroutable teardown or an overflow cap is
  // visible to the tracer — nothing vanished silently. (With
  // -DNK_DISABLE_TRACING the tracer observes nothing, so the invariant
  // only holds when the hooks are compiled in.)
#ifndef NK_NO_TRACING
  for (auto* ce : {&bed.netkernel(side::a), &bed.netkernel(side::b)}) {
    const auto& m = ce->metrics();
    EXPECT_EQ(m.value_of("nqe_traces_overflow").value_or(0.0), 0.0);
    const double lost = m.value_of("engine_unroutable_nqes").value_or(0.0) +
                        m.value_of("engine_nqes_dropped").value_or(0.0);
    EXPECT_EQ(lost, m.value_of("nqe_traces_dropped").value_or(0.0));
  }
#endif
}

TEST(core_engine, detach_vm_reclaims_channel_and_metrics) {
  testbed bed{apps::datacenter_params(77)};
  nsm_config nsm_cfg;
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "t2";
  auto t2 = bed.attach_netkernel_vm(side::a, vm_cfg, *t1.module);
  bed.run_for(milliseconds(10));

  // Leave work in flight: an open socket plus a connect that will never
  // complete. detach_vm must scrub the mapping table and recycle whatever
  // the rings still hold.
  const auto fd = t1.glib->nk_socket().value();
  (void)t1.glib->nk_connect(fd, {bed.next_address(side::b), 7000});

  core_engine& ce = bed.netkernel(side::a);
  const auto vm1 = t1.vm->id();
  const std::string prefix = "vm" + std::to_string(vm1) + "_";
  ASSERT_TRUE(ce.metrics().value_of(prefix + "vmq_job_depth").has_value());
  auto* ch = ce.channel_of(vm1);
  ASSERT_NE(ch, nullptr);

  ce.detach_vm(vm1);
  bed.run_for(milliseconds(10));

  EXPECT_EQ(ce.channel_of(vm1), nullptr);
  EXPECT_EQ(ce.guestlib_of(vm1), nullptr);
  EXPECT_FALSE(ce.metrics().value_of(prefix + "vmq_job_depth").has_value());
  EXPECT_EQ(ce.attached_vms().size(), 1u);
  // The retired channel's pool got every chunk back.
  EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());

  // The surviving tenant on the same NSM is unaffected.
  EXPECT_NE(ce.channel_of(t2.vm->id()), nullptr);
  const auto fd2 = t2.glib->nk_socket().value();
  bed.run_for(milliseconds(10));
  EXPECT_TRUE(t2.glib->nk_bind(fd2, 7100).ok());
}

}  // namespace
}  // namespace nk::core
