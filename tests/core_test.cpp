// NetKernel core tests: the full GuestLib -> CoreEngine -> ServiceLib -> NSM
// path on a two-host testbed, connection mapping, flow-control credit,
// per-socket stack selection, multiplexing, SLA enforcement, notification
// modes, and accounting.
#include <gtest/gtest.h>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"
#include "core/accounting.hpp"
#include "core/hostile.hpp"

namespace nk::core {
namespace {

using apps::side;
using apps::testbed;

// A NetKernel tenant on side a talking to a NetKernel tenant on side b.
// The optional `tweak` hook edits the testbed params before construction.
struct nk_pair {
  explicit nk_pair(
      tcp::cc_algorithm cc = tcp::cc_algorithm::cubic,
      std::uint64_t seed = 1,
      const std::function<void(apps::testbed_params&)>& tweak = {})
      : bed{[&] {
          auto p = apps::datacenter_params(seed);
          if (tweak) tweak(p);
          return p;
        }()} {
    nsm_config nsm_cfg;
    nsm_cfg.tcp = apps::datacenter_tcp(cc);
    nsm_cfg.cc = cc;

    virt::vm_config vm_cfg;
    vm_cfg.name = "tenant-a";
    client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
    vm_cfg.name = "tenant-b";
    nsm_cfg.name = "nsm-b";
    server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  }

  testbed bed;
  apps::nk_tenant client;
  apps::nk_tenant server;
};

TEST(netkernel_path, connect_and_echo_roundtrip) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  auto& glib_c = *rig.client.glib;

  // Server: listen and echo one message.
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  std::uint32_t server_conn = 0;
  glib_s.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      server_conn = glib_s.nk_accept(lfd).value();
    } else if (fd == server_conn &&
               t == stack::socket_event_type::readable) {
      while (auto r = glib_s.nk_recv(server_conn, 1 << 20)) {
        (void)glib_s.nk_send(server_conn, std::move(r).value());
      }
    }
  });

  // Client: connect, send, await echo.
  const auto cfd = glib_c.nk_socket().value();
  buffer_chain echoed;
  bool connected = false;
  glib_c.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd != cfd) return;
    if (t == stack::socket_event_type::connected) {
      connected = true;
      (void)glib_c.nk_send(cfd, buffer::pattern(50000, 0));
    } else if (t == stack::socket_event_type::readable) {
      while (auto r = glib_c.nk_recv(cfd, 1 << 20)) {
        echoed.append(std::move(r).value());
      }
    }
  });
  ASSERT_TRUE(glib_c
                  .nk_connect(cfd, {rig.server.module->config().address, 7000})
                  .ok());

  rig.bed.run_for(seconds(2));
  EXPECT_TRUE(connected);
  ASSERT_EQ(echoed.size(), 50000u);
  EXPECT_TRUE(echoed.pop(50000).matches_pattern(0));

  // The mapping table was exercised in both directions.
  EXPECT_GT(rig.bed.netkernel(side::a).stats().nqes_forwarded, 0u);
  EXPECT_GT(rig.bed.netkernel(side::b).stats().accept_fds_minted, 0u);
}

TEST(netkernel_path, bulk_transfer_off_the_unified_api) {
  nk_pair rig;
  apps::bulk_sink sink{*rig.server.api, 7001, /*validate=*/true};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 2;
  cfg.bytes_per_flow = 2 * 1024 * 1024;
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();

  rig.bed.run_for(seconds(5));
  EXPECT_EQ(sink.total_bytes(), 4u * 1024 * 1024);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sender.flows_done(), 2);
}

TEST(netkernel_path, per_socket_congestion_control_override) {
  nk_pair rig{tcp::cc_algorithm::cubic};
  auto& glib = *rig.client.glib;
  const auto fd = glib.nk_socket().value();
  ASSERT_TRUE(glib.nk_setsockopt(
                      fd, nk_option::congestion_control,
                      static_cast<std::uint64_t>(tcp::cc_algorithm::bbr))
                  .ok());
  // Server side listener.
  auto& glib_s = *rig.server.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());

  ASSERT_TRUE(
      glib.nk_connect(fd, {rig.server.module->config().address, 7000}).ok());
  rig.bed.run_for(milliseconds(100));

  // Find the NSM-side tcb and confirm it mounts BBR despite the NSM default
  // being Cubic — "any stack independent of the guest kernel".
  auto& stack = rig.client.module->stack();
  bool found_bbr = false;
  for (stack::socket_id s = 1; s < 20; ++s) {
    if (auto* t = stack.tcb_of(s)) {
      if (t->cc().name() == "bbr") found_bbr = true;
    }
  }
  EXPECT_TRUE(found_bbr);
}

TEST(netkernel_path, send_credit_backpressures_application) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  // Server accepts but never reads: the pipeline must fill and push back.

  glib_s.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      (void)glib_s.nk_accept(lfd);
    }
  });

  auto& glib_c = *rig.client.glib;
  const auto fd = glib_c.nk_socket().value();
  std::uint64_t accepted = 0;
  bool hit_block = false;
  glib_c.set_event_handler([&](std::uint32_t f, stack::socket_event_type t,
                               errc) {
    if (f != fd || t != stack::socket_event_type::connected) return;
    while (true) {
      auto r = glib_c.nk_send(fd, buffer::pattern(256 * 1024, accepted));
      if (!r) {
        hit_block = true;
        break;
      }
      accepted += r.value();
      if (accepted > 512 * 1024 * 1024) break;  // runaway guard
    }
  });
  ASSERT_TRUE(
      glib_c.nk_connect(fd, {rig.server.module->config().address, 7000}).ok());

  rig.bed.run_for(seconds(1));
  EXPECT_TRUE(hit_block);
  // Way below the runaway guard: credit + buffers bound the pipeline.
  EXPECT_LT(accepted, 64u * 1024 * 1024);
}

TEST(netkernel_multiplexing, one_nsm_serves_two_vms) {
  auto params = apps::datacenter_params(7);
  testbed bed{params};

  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.cores = 2;

  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "t2";
  auto t2 = bed.attach_netkernel_vm(side::a, vm_cfg, *t1.module);
  EXPECT_EQ(t1.module, t2.module);

  nsm_config server_cfg;
  server_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  vm_cfg.name = "server";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, server_cfg);

  apps::bulk_sink sink{*server.api, 7001, true};
  sink.start();

  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 1024 * 1024;
  apps::bulk_sender s1{*t1.api, {server.module->config().address, 7001}, cfg};
  apps::bulk_sender s2{*t2.api, {server.module->config().address, 7001}, cfg};
  s1.start();
  s2.start();

  bed.run_for(seconds(5));
  EXPECT_EQ(sink.total_bytes(), 2u * 1024 * 1024);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sink.flows_seen(), 2u);
}

TEST(netkernel_isolation, channels_use_distinct_pool_keys) {
  auto params = apps::datacenter_params(7);
  testbed bed{params};
  nsm_config nsm_cfg;
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "t2";
  auto t2 = bed.attach_netkernel_vm(side::a, vm_cfg, *t1.module);

  auto* ch1 = bed.netkernel(side::a).channel_of(t1.vm->id());
  auto* ch2 = bed.netkernel(side::a).channel_of(t2.vm->id());
  ASSERT_NE(ch1, nullptr);
  ASSERT_NE(ch2, nullptr);
  EXPECT_NE(ch1->pool.key(), ch2->pool.key());

  // A descriptor from tenant 2's pool must be rejected by tenant 1's pool.
  auto chunk = ch2->pool.alloc();
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(ch1->pool.readable(shm::data_descriptor{chunk.value(), 0, 16})
                .error(),
            errc::permission_denied);
}

TEST(netkernel_sla, rate_cap_throttles_tenant) {
  nk_pair rig;
  rig.bed.netkernel(side::a).sla().set_tenant(
      rig.client.vm->id(),
      sla_spec{.rate_cap = data_rate::gbps(1), .burst_bytes = 256 * 1024});

  apps::bulk_sink sink{*rig.server.api, 7001, false};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 0;  // unbounded
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();

  rig.bed.run_for(seconds(1));
  const auto goodput = rate_of(sink.total_bytes(), seconds(1));
  // Capped at 1 Gb/s on a 40 Gb/s path (generous tolerance for burst).
  EXPECT_LT(goodput.bps(), 1.4e9);
  EXPECT_GT(goodput.bps(), 0.5e9);
  EXPECT_GT(rig.bed.netkernel(side::a)
                .sla()
                .usage_of(rig.client.vm->id())
                .throttle_events,
            0u);
}

TEST(netkernel_accounting, pricing_models_differ) {
  nk_pair rig;
  apps::bulk_sink sink{*rig.server.api, 7001, false};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 4 * 1024 * 1024;
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();
  rig.bed.run_for(seconds(2));

  auto usage = measure(*rig.client.module, rig.bed.sim().now(), 5.0);
  usage.bytes_moved = sink.total_bytes();
  EXPECT_GT(usage.cpu_busy, sim_time::zero());

  const double flat = charge(pricing_model::per_instance, usage);
  const double metered = charge(pricing_model::usage_based, usage);
  const double sla = charge(pricing_model::sla_based, usage);
  EXPECT_GT(flat, 0.0);
  EXPECT_GT(metered, 0.0);
  EXPECT_GT(sla, 0.0);
  EXPECT_FALSE(invoice_line(pricing_model::usage_based, usage).empty());
}

TEST(netkernel_datapath, sriov_nsm_bypasses_the_software_switch) {
  nk_pair rig;  // default NSMs are SR-IOV VFs
  apps::bulk_sink sink{*rig.server.api, 7001, false};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 512 * 1024;
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();
  rig.bed.run_for(seconds(1));
  ASSERT_EQ(sink.total_bytes(), 512u * 1024);
  // Every forwarded packet took the embedded (hardware) path.
  const auto& sw = rig.bed.host(apps::side::a).overlay_switch().stats();
  EXPECT_GT(sw.embedded_forwards, 0u);
  EXPECT_EQ(sw.software_forwards, 0u);
}

TEST(netkernel_datapath, non_sriov_nsm_pays_the_software_switch) {
  auto params = apps::datacenter_params(8);
  apps::testbed bed{params};
  core::nsm_config nsm_cfg;
  nsm_cfg.sriov = false;  // software vSwitch path
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "a";
  auto a = bed.add_netkernel_vm(apps::side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "b";
  nsm_cfg.name = "nsm-b";
  auto b = bed.add_netkernel_vm(apps::side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*b.api, 7001, false};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 256 * 1024;
  apps::bulk_sender sender{*a.api, {b.module->config().address, 7001}, cfg};
  sender.start();
  bed.run_for(seconds(1));
  ASSERT_EQ(sink.total_bytes(), 256u * 1024);
  EXPECT_GT(bed.host(apps::side::a).overlay_switch().stats().software_forwards,
            0u);
}

TEST(netkernel_notification, batched_interrupt_mode_works_end_to_end) {
  auto params = apps::datacenter_params(3);
  params.netkernel.notification.kind =
      notify_config::mode::batched_interrupt;
  params.netkernel.notification.interrupt_delay = microseconds(3);
  testbed bed{params};

  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "a";
  auto a = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "b";
  nsm_cfg.name = "nsm-b";
  auto b = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*b.api, 7001, true};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 1;
  cfg.bytes_per_flow = 1024 * 1024;
  apps::bulk_sender sender{*a.api, {b.module->config().address, 7001}, cfg};
  sender.start();

  bed.run_for(seconds(5));
  EXPECT_EQ(sink.total_bytes(), 1024u * 1024);
  EXPECT_TRUE(sink.pattern_ok());
}

TEST(netkernel_guestlib, epoll_reports_ready_sets) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  const auto epfd = glib_s.nk_epoll_create().value();
  ASSERT_TRUE(glib_s.nk_epoll_add(epfd, lfd).ok());

  auto& glib_c = *rig.client.glib;
  const auto cfd = glib_c.nk_socket().value();
  ASSERT_TRUE(
      glib_c.nk_connect(cfd, {rig.server.module->config().address, 7000}).ok());
  rig.bed.run_for(milliseconds(100));

  // Listener readable (accept pending) via epoll.
  auto ready = glib_s.nk_epoll_wait(epfd);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].fd, lfd);
  EXPECT_TRUE(ready[0].readable);

  const auto conn = glib_s.nk_accept(lfd).value();
  ASSERT_TRUE(glib_s.nk_epoll_add(epfd, conn).ok());
  ASSERT_TRUE(glib_s.nk_epoll_del(epfd, lfd).ok());

  (void)glib_c.nk_send(cfd, buffer::pattern(100, 0));
  rig.bed.run_for(milliseconds(100));
  ready = glib_s.nk_epoll_wait(epfd);
  bool conn_readable = false;
  for (const auto& ev : ready) {
    if (ev.fd == conn && ev.readable) conn_readable = true;
  }
  EXPECT_TRUE(conn_readable);
}

TEST(netkernel_guestlib, close_releases_mapping_and_chunks) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  glib_s.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      (void)glib_s.nk_accept(lfd);
    }
  });

  auto& glib_c = *rig.client.glib;
  const auto fd = glib_c.nk_socket().value();
  ASSERT_TRUE(
      glib_c.nk_connect(fd, {rig.server.module->config().address, 7000}).ok());
  rig.bed.run_for(milliseconds(50));
  ASSERT_TRUE(glib_c.nk_send(fd, buffer::pattern(8192, 0)).ok());
  rig.bed.run_for(milliseconds(50));
  ASSERT_TRUE(glib_c.nk_close(fd).ok());
  rig.bed.run_for(milliseconds(500));

  auto* ch = rig.bed.netkernel(side::a).channel_of(rig.client.vm->id());
  // All chunks must have come back to the free list.
  EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
  EXPECT_GT(rig.bed.netkernel(side::a).stats().mappings_removed, 0u);
}

// Tiny rings (depth 8) force every queue in the pipeline to overflow, and
// an abrupt mid-stream close adds unroutable events on top. Afterward the
// failure-accounting invariant must hold on both hosts: all chunks back in
// the pool, no stuck flows, every traced nqe either delivered or visible in
// the drop counters.
TEST(netkernel_backpressure, tiny_rings_lose_no_nqes_or_chunks) {
  auto params = apps::datacenter_params(7);
  params.netkernel.channel.queues.depth = 8;
  params.netkernel.overflow_limit = 64;
  params.netkernel.trace.enabled = true;
  params.netkernel.trace.sample_rate = 1.0;
  params.netkernel.trace.max_active = 1 << 16;
  params.netkernel.trace.max_spans = 1 << 17;
  testbed bed{params};

  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.cc = tcp::cc_algorithm::cubic;
  virt::vm_config vm_cfg;
  vm_cfg.name = "tenant-a";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "tenant-b";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  // Workload 1: bulk transfer, 2 flows x 1 MB, validated end to end.
  apps::bulk_sink sink{*server.api, 7001, /*validate=*/true};
  sink.start();
  apps::bulk_sender_config bcfg;
  bcfg.flows = 2;
  bcfg.bytes_per_flow = 1024 * 1024;
  apps::bulk_sender sender{*client.api,
                           {server.module->config().address, 7001}, bcfg};
  sender.start();

  // Workload 2, on its own tenant pair (the unified API above owns the
  // first pair's event handlers): the server streams at the client, which
  // closes after the first readable event — the rest of the stream arrives
  // for a torn-down mapping and must be recycled, not leaked.
  vm_cfg.name = "tenant-c";
  nsm_cfg.name = "nsm-c";
  auto client2 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "tenant-d";
  nsm_cfg.name = "nsm-d";
  auto server2 = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  auto& glib_s = *server2.glib;
  auto& glib_c = *client2.glib;
  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7002).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  std::uint32_t sconn = 0;
  glib_s.set_event_handler(
      [&](std::uint32_t fd, stack::socket_event_type t, errc) {
        if (fd == lfd && t == stack::socket_event_type::accept_ready) {
          sconn = glib_s.nk_accept(lfd).value();
          (void)glib_s.nk_send(sconn, buffer::pattern(512 * 1024, 1));
        } else if (fd == sconn && t == stack::socket_event_type::writable) {
          (void)glib_s.nk_send(sconn, buffer::pattern(64 * 1024, 1));
        }
      });
  const auto cfd = glib_c.nk_socket().value();
  bool closed = false;
  glib_c.set_event_handler(
      [&](std::uint32_t fd, stack::socket_event_type t, errc) {
        if (fd == cfd && t == stack::socket_event_type::readable && !closed) {
          closed = true;
          (void)glib_c.nk_close(cfd);
        }
      });
  ASSERT_TRUE(
      glib_c.nk_connect(cfd, {server2.module->config().address, 7002}).ok());

  bed.run_for(seconds(5));
  EXPECT_TRUE(closed);

  // No permanently stuck flows: the bulk transfer ran to completion through
  // depth-8 rings.
  EXPECT_EQ(sink.total_bytes(), 2u * 1024 * 1024);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sender.flows_done(), 2);

  // Zero chunk leaks on every channel of both hosts.
  for (auto* ce : {&bed.netkernel(side::a), &bed.netkernel(side::b)}) {
    for (const auto vm : ce->attached_vms()) {
      auto* ch = ce->channel_of(vm);
      EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
    }
  }

  // The tiny rings must actually have exercised the overflow machinery.
  const double deferred =
      bed.netkernel(side::a).metrics().value_of("engine_nqes_deferred").value() +
      bed.netkernel(side::b).metrics().value_of("engine_nqes_deferred").value();
  EXPECT_GT(deferred, 0.0);

  // Failure accounting: with every nqe traced (sample_rate 1, no tracer
  // overflow), each loss to unroutable teardown or an overflow cap is
  // visible to the tracer — nothing vanished silently. (With
  // -DNK_DISABLE_TRACING the tracer observes nothing, so the invariant
  // only holds when the hooks are compiled in.)
#ifndef NK_NO_TRACING
  for (auto* ce : {&bed.netkernel(side::a), &bed.netkernel(side::b)}) {
    const auto& m = ce->metrics();
    EXPECT_EQ(m.value_of("nqe_traces_overflow").value_or(0.0), 0.0);
    const double lost = m.value_of("engine_unroutable_nqes").value_or(0.0) +
                        m.value_of("engine_nqes_dropped").value_or(0.0);
    EXPECT_EQ(lost, m.value_of("nqe_traces_dropped").value_or(0.0));
  }
#endif
}

TEST(core_engine, detach_vm_reclaims_channel_and_metrics) {
  testbed bed{apps::datacenter_params(77)};
  nsm_config nsm_cfg;
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "t2";
  auto t2 = bed.attach_netkernel_vm(side::a, vm_cfg, *t1.module);
  bed.run_for(milliseconds(10));

  // Leave work in flight: an open socket plus a connect that will never
  // complete. detach_vm must scrub the mapping table and recycle whatever
  // the rings still hold.
  const auto fd = t1.glib->nk_socket().value();
  (void)t1.glib->nk_connect(fd, {bed.next_address(side::b), 7000});

  core_engine& ce = bed.netkernel(side::a);
  const auto vm1 = t1.vm->id();
  const std::string prefix = "vm" + std::to_string(vm1) + "_";
  ASSERT_TRUE(ce.metrics().value_of(prefix + "vmq_job_depth").has_value());
  auto* ch = ce.channel_of(vm1);
  ASSERT_NE(ch, nullptr);

  ce.detach_vm(vm1);
  bed.run_for(milliseconds(10));

  EXPECT_EQ(ce.channel_of(vm1), nullptr);
  EXPECT_EQ(ce.guestlib_of(vm1), nullptr);
  EXPECT_FALSE(ce.metrics().value_of(prefix + "vmq_job_depth").has_value());
  EXPECT_EQ(ce.attached_vms().size(), 1u);
  // The retired channel's pool got every chunk back.
  EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());

  // The surviving tenant on the same NSM is unaffected.
  EXPECT_NE(ce.channel_of(t2.vm->id()), nullptr);
  const auto fd2 = t2.glib->nk_socket().value();
  bed.run_for(milliseconds(10));
  EXPECT_TRUE(t2.glib->nk_bind(fd2, 7100).ok());
}

// Regression for a family of rehash bugs: handler code held references and
// iterators into by_flow_ / by_nsm_ / sockets_ across inserts into the same
// maps (ev_accept resolved the listener, then inserted the child — a rehash
// invalidated the listener iterator). Waves of concurrent accepts grow the
// tables through several rehash points mid-callback; every connection must
// still echo correctly and every chunk must come home.
TEST(netkernel_churn, accept_close_churn_survives_table_rehashes) {
  nk_pair rig;
  auto& glib_s = *rig.server.glib;
  auto& glib_c = *rig.client.glib;

  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  glib_s.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      while (glib_s.nk_accept(lfd).ok()) {
      }
    } else if (t == stack::socket_event_type::readable) {
      while (auto r = glib_s.nk_recv(fd, 1 << 20)) {
        (void)glib_s.nk_send(fd, std::move(r).value());
      }
    }
  });

  int echoed = 0;
  glib_c.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (t == stack::socket_event_type::connected) {
      (void)glib_c.nk_send(fd, buffer::pattern(4096, fd));
    } else if (t == stack::socket_event_type::readable) {
      buffer_chain got;
      while (auto r = glib_c.nk_recv(fd, 1 << 20)) {
        got.append(std::move(r).value());
      }
      if (got.size() == 4096) {
        EXPECT_TRUE(got.pop(4096).matches_pattern(fd));
        ++echoed;
        (void)glib_c.nk_close(fd);
      }
    }
  });

  // Three waves of 16 concurrent connects: each wave inserts 16 flows into
  // by_flow_ (client side) and mints 16 accept children into by_nsm_
  // (server side) while the previous wave's entries are being erased.
  constexpr int waves = 3;
  constexpr int per_wave = 16;
  for (int w = 0; w < waves; ++w) {
    for (int i = 0; i < per_wave; ++i) {
      const auto fd = glib_c.nk_socket().value();
      ASSERT_TRUE(glib_c
                      .nk_connect(fd,
                                  {rig.server.module->config().address, 7000})
                      .ok());
    }
    rig.bed.run_for(milliseconds(500));
  }
  rig.bed.run_for(seconds(2));

  EXPECT_EQ(echoed, waves * per_wave);
  EXPECT_EQ(rig.bed.netkernel(side::b).stats().accept_fds_minted,
            static_cast<std::uint64_t>(waves * per_wave));
  for (auto* ce : {&rig.bed.netkernel(side::a), &rig.bed.netkernel(side::b)}) {
    for (const auto vm : ce->attached_vms()) {
      auto* ch = ce->channel_of(vm);
      EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
    }
  }
}

// A four-shard rig: both hosts' engines run four independent shards.
struct sharded_pair {
  explicit sharded_pair(std::uint64_t seed = 11, std::size_t shards = 4)
      : bed{[&] {
          auto p = apps::datacenter_params(seed);
          p.netkernel.shards = shards;
          return p;
        }()} {
    nsm_config nsm_cfg;
    nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
    virt::vm_config vm_cfg;
    vm_cfg.name = "tenant-a";
    client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
    vm_cfg.name = "tenant-b";
    nsm_cfg.name = "nsm-b";
    server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  }

  testbed bed;
  apps::nk_tenant client;
  apps::nk_tenant server;
};

TEST(netkernel_sharding, four_shards_carry_traffic_and_sum_to_aggregate) {
  sharded_pair rig;
  core_engine& ce = rig.bed.netkernel(side::a);
  ASSERT_EQ(ce.shards(), 4u);

  apps::bulk_sink sink{*rig.server.api, 7001, /*validate=*/true};
  sink.start();
  apps::bulk_sender_config cfg;
  cfg.flows = 8;  // eight fds hash across the four shards
  cfg.bytes_per_flow = 512 * 1024;
  apps::bulk_sender sender{*rig.client.api,
                           {rig.server.module->config().address, 7001}, cfg};
  sender.start();
  rig.bed.run_for(seconds(5));

  // The workload is unaffected by sharding.
  EXPECT_EQ(sink.total_bytes(), 8u * 512 * 1024);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sender.flows_done(), 8);

  // The aggregate is exactly the sum of the shard partitions, and the
  // steering hash spread eight flows over more than one shard.
  for (auto* eng : {&ce, &rig.bed.netkernel(side::b)}) {
    core_engine_stats sum;
    std::size_t busy = 0;
    for (std::size_t s = 0; s < eng->shards(); ++s) {
      const auto& st = eng->shard_stats(s);
      sum.nqes_forwarded += st.nqes_forwarded;
      sum.accept_fds_minted += st.accept_fds_minted;
      sum.mappings_installed += st.mappings_installed;
      sum.mappings_removed += st.mappings_removed;
      if (st.nqes_forwarded > 0) ++busy;
    }
    const auto agg = eng->stats();
    EXPECT_EQ(sum.nqes_forwarded, agg.nqes_forwarded);
    EXPECT_EQ(sum.accept_fds_minted, agg.accept_fds_minted);
    EXPECT_EQ(sum.mappings_installed, agg.mappings_installed);
    EXPECT_GE(busy, 2u);
    // Per-shard gauges materialize only in sharded mode, and agree with the
    // partition they mirror.
    const auto g0 =
        eng->metrics().value_of("engine_shard0_nqes_forwarded");
    ASSERT_TRUE(g0.has_value());
    EXPECT_EQ(static_cast<std::uint64_t>(*g0),
              eng->shard_stats(0).nqes_forwarded);
  }
}

TEST(netkernel_sharding, rebalance_rehomes_quiescent_vm_and_traffic_survives) {
  sharded_pair rig;
  core_engine& ce = rig.bed.netkernel(side::a);
  auto& glib_s = *rig.server.glib;
  auto& glib_c = *rig.client.glib;

  const auto lfd = glib_s.nk_socket().value();
  ASSERT_TRUE(glib_s.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(glib_s.nk_listen(lfd).ok());
  std::uint32_t sconn = 0;
  glib_s.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      sconn = glib_s.nk_accept(lfd).value();
    } else if (fd == sconn && t == stack::socket_event_type::readable) {
      while (auto r = glib_s.nk_recv(sconn, 1 << 20)) {
        (void)glib_s.nk_send(sconn, std::move(r).value());
      }
    }
  });

  std::vector<std::uint32_t> fds;
  for (int i = 0; i < 4; ++i) fds.push_back(glib_c.nk_socket().value());
  buffer_chain echoed;
  glib_c.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                               errc) {
    if (t == stack::socket_event_type::readable) {
      while (auto r = glib_c.nk_recv(fd, 1 << 20)) {
        echoed.append(std::move(r).value());
      }
    }
  });
  ASSERT_TRUE(glib_c
                  .nk_connect(fds[0],
                              {rig.server.module->config().address, 7000})
                  .ok());
  rig.bed.run_for(milliseconds(100));

  // Fresh sockets home on their steering hash.
  const auto vm = rig.client.vm->id();
  std::size_t away_from_1 = 0;
  for (const auto fd : fds) {
    const auto home = ce.shard_of(vm, fd);
    ASSERT_TRUE(home.has_value());
    EXPECT_EQ(*home, shm::flow_shard(vm, fd, ce.shards()));
    if (*home != 1) ++away_from_1;
  }
  ASSERT_GT(away_from_1, 0u);

  // Quiescent now — re-home everything onto shard 1 (flows already living
  // there are not re-moved).
  const std::size_t moved = ce.rebalance_vm(vm, 1);
  EXPECT_EQ(moved, away_from_1);
  for (const auto fd : fds) {
    EXPECT_EQ(ce.shard_of(vm, fd).value_or(99), 1u);
  }
  EXPECT_EQ(ce.metrics().value_of("shard_rebalances").value_or(0.0),
            static_cast<double>(moved));

  // The connected flow still works end to end on its new home shard.
  ASSERT_TRUE(glib_c.nk_send(fds[0], buffer::pattern(50000, 3)).ok());
  rig.bed.run_for(seconds(1));
  ASSERT_EQ(echoed.size(), 50000u);
  EXPECT_TRUE(echoed.pop(50000).matches_pattern(3));

  // Rebalancing an unknown VM, or to an out-of-range shard, moves nothing.
  EXPECT_EQ(ce.rebalance_vm(9999, 1), 0u);
  EXPECT_EQ(ce.rebalance_vm(vm, 17), 0u);
}

TEST(netkernel_sharding, detach_vm_scrubs_every_shard) {
  sharded_pair rig;
  core_engine& ce = rig.bed.netkernel(side::a);

  // Open enough sockets that every shard owns at least one mapping, with a
  // connect left permanently in flight (work parked in rings and stages).
  auto& glib = *rig.client.glib;
  std::vector<std::uint32_t> fds;
  for (int i = 0; i < 16; ++i) fds.push_back(glib.nk_socket().value());
  rig.bed.run_for(milliseconds(20));
  (void)glib.nk_connect(fds[0], {rig.bed.next_address(side::b), 7000});

  const auto vm = rig.client.vm->id();
  auto* ch = ce.channel_of(vm);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->shards(), 4u);

  ce.detach_vm(vm);
  rig.bed.run_for(milliseconds(10));

  EXPECT_EQ(ce.channel_of(vm), nullptr);
  for (const auto fd : fds) {
    EXPECT_FALSE(ce.shard_of(vm, fd).has_value());
  }
  // Every chunk came home from every lane and stage of every shard.
  EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
}

TEST(netkernel_sharding, failover_replays_flows_within_owning_shards) {
  auto params = apps::datacenter_params(13);
  params.netkernel.shards = 4;
  params.netkernel.trace.enabled = true;
  params.netkernel.trace.sample_rate = 1.0;
  params.netkernel.trace.max_active = 1 << 16;
  params.netkernel.trace.max_spans = 1 << 17;
  testbed bed{params};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  auto& gs = *server.glib;
  const auto lfd = gs.nk_socket().value();
  ASSERT_TRUE(gs.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(gs.nk_listen(lfd).ok());
  gs.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      while (gs.nk_accept(lfd).ok()) {
      }
    }
  });

  auto& gc = *client.glib;
  std::vector<std::uint32_t> fds;
  int connected = 0;
  int reset = 0;
  gc.set_event_handler([&](std::uint32_t, stack::socket_event_type t,
                           errc e) {
    if (t == stack::socket_event_type::connected) ++connected;
    if (t == stack::socket_event_type::error && e == errc::nsm_reset) ++reset;
  });
  for (int i = 0; i < 4; ++i) {
    const auto fd = gc.nk_socket().value();
    fds.push_back(fd);
    ASSERT_TRUE(
        gc.nk_connect(fd, {server.module->config().address, 7000}).ok());
  }
  bed.run_for(milliseconds(100));
  ASSERT_EQ(connected, 4);

  // Remember each flow's home shard, then crash and replace the client-side
  // NSM. Established TCP flows die with the stack (nsm_reset toward the
  // guest); the mapping table keeps its steering across the epoch bump.
  core_engine& ce = bed.netkernel(side::a);
  const auto vm = client.vm->id();
  std::vector<std::size_t> homes;
  for (const auto fd : fds) homes.push_back(ce.shard_of(vm, fd).value());

  const nsm_id dead = client.module->id();
  ce.service_of(dead)->fail();
  nsm_config fresh_cfg = client.module->config();
  fresh_cfg.name = "nsm-a2";
  fresh_cfg.form = nsm_form::container;  // 60 ms boot, not the VM's 900 ms
  ce.replace_nsm(dead, fresh_cfg);
  bed.run_for(milliseconds(200));  // boot + switchover + error delivery

  EXPECT_EQ(reset, 4);
  for (std::size_t i = 0; i < fds.size(); ++i) {
    // Doomed flows were scrubbed from exactly their owning shard...
    EXPECT_FALSE(ce.shard_of(vm, fds[i]).has_value()) << "fd " << fds[i];
  }

  // ...and a brand-new connect through the replacement module works.
  const auto fd2 = gc.nk_socket().value();
  ASSERT_TRUE(
      gc.nk_connect(fd2, {server.module->config().address, 7000}).ok());
  bed.run_for(milliseconds(100));
  EXPECT_EQ(connected, 5);

  // Per-shard drop accounting stayed consistent through the failover: every
  // engine-side discard (unroutable, capped, stale) retired a live trace in
  // the shard that discarded it.
#ifndef NK_NO_TRACING
  for (std::size_t s = 0; s < ce.shards(); ++s) {
    const auto& st = ce.shard_stats(s);
    EXPECT_EQ(st.unroutable_nqes + st.nqes_dropped + st.stale_nqes +
                  st.rejected_nqes,
              ce.shard_traces_dropped(s) + ce.shard_discards_untraced(s))
        << "shard " << s;
  }
#endif
}

// --- admission firewall + abuse quarantine (DESIGN.md §14) -----------------

// nk_pair plus a hostile third VM on side a with its own NSM, and a
// test-tuned escalation budget: burst 4 warnings, then throttled, then 8
// more violations quarantine. `burst` can be raised to disable escalation.
struct firewall_rig : nk_pair {
  explicit firewall_rig(sim_time probation,
                        std::uint64_t burst = 4)
      : nk_pair{tcp::cc_algorithm::cubic, 1, [&](apps::testbed_params& p) {
                  p.netkernel.firewall.violations_per_sec = 1.0;
                  p.netkernel.firewall.violation_burst = burst;
                  p.netkernel.firewall.quarantine_threshold = 8;
                  p.netkernel.firewall.probation = probation;
                }} {
    nsm_config nsm_cfg;
    nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
    nsm_cfg.name = "nsm-rogue";
    virt::vm_config vm_cfg;
    vm_cfg.name = "rogue-vm";
    rogue = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  }

  [[nodiscard]] core_engine& engine() { return bed.netkernel(side::a); }
  [[nodiscard]] virt::vm_id rogue_id() const { return rogue->vm->id(); }

  // Storms until the engine quarantines the rogue (or a time cap passes).
  void storm_until_quarantined(hostile_guest& attacker) {
    for (int i = 0; i < 50 && !engine().quarantined(rogue_id()); ++i) {
      attacker.storm(20);
      bed.run_for(milliseconds(1));
    }
  }

  std::optional<apps::nk_tenant> rogue;
};

TEST(netkernel_firewall, each_attack_category_hits_its_reason_counter) {
  // Escalation off: every forgery is rejected individually.
  firewall_rig rig{sim_time::zero(), /*burst=*/1ull << 30};
  hostile_guest attacker{rig.engine(), rig.rogue_id(), 99};

  ASSERT_TRUE(attacker.inject(hostile_guest::attack::bad_op));
  ASSERT_TRUE(attacker.inject(hostile_guest::attack::bad_fd));
  ASSERT_TRUE(attacker.inject(hostile_guest::attack::bad_chunk));
  ASSERT_TRUE(attacker.inject(hostile_guest::attack::bad_epoch));
  ASSERT_TRUE(attacker.inject(hostile_guest::attack::bad_token));
  rig.bed.run_for(milliseconds(5));

  std::array<std::uint64_t, 4> reasons{};
  for (std::size_t s = 0; s < rig.engine().shards(); ++s) {
    const auto& r = rig.engine().shard_rejected_reasons(s);
    for (std::size_t i = 0; i < r.size(); ++i) reasons[i] += r[i];
  }
  EXPECT_EQ(reasons[0], 1u);  // badop
  EXPECT_EQ(reasons[1], 1u);  // badfd
  EXPECT_EQ(reasons[2], 1u);  // badchunk
  EXPECT_EQ(reasons[3], 2u);  // badepoch: epoch/owner forgery + token forgery
  // Violations were logged (warn) but the huge budget prevents escalation.
  EXPECT_EQ(rig.engine().abuse_level_of(rig.rogue_id()), abuse_level::warn);
  EXPECT_FALSE(rig.engine().quarantined(rig.rogue_id()));
}

TEST(netkernel_firewall, escalation_quarantines_rogue_and_spares_neighbor) {
  firewall_rig rig{sim_time::zero()};
  hostile_guest attacker{rig.engine(), rig.rogue_id(), 7};

  EXPECT_EQ(rig.engine().abuse_level_of(rig.rogue_id()), abuse_level::ok);
  rig.storm_until_quarantined(attacker);

  // The rogue ends quarantined and detached; its channel is retired but the
  // decision is on the record.
  EXPECT_TRUE(rig.engine().quarantined(rig.rogue_id()));
  EXPECT_EQ(rig.engine().abuse_level_of(rig.rogue_id()),
            abuse_level::quarantined);
  EXPECT_EQ(rig.engine().channel_of(rig.rogue_id()), nullptr);
  ASSERT_EQ(rig.engine().quarantine_log().size(), 1u);
  const auto& rec = rig.engine().quarantine_log().front();
  EXPECT_EQ(rec.vm, rig.rogue_id());
  EXPECT_EQ(rec.readmit_at, sim_time::zero());  // permanent
  EXPECT_GE(rec.violations, 12u);               // burst 4 + threshold 8
  EXPECT_EQ(rig.engine()
                .metrics()
                .value_of("vms_quarantined")
                .value_or(0.0),
            1.0);

  // The clean tenant on the same engine is untouched: it still connects.
  auto& gs = *rig.server.glib;
  const auto lfd = gs.nk_socket().value();
  ASSERT_TRUE(gs.nk_bind(lfd, 7200).ok());
  ASSERT_TRUE(gs.nk_listen(lfd).ok());
  gs.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      while (gs.nk_accept(lfd).ok()) {
      }
    }
  });
  auto& gc = *rig.client.glib;
  const auto cfd = gc.nk_socket().value();
  bool connected = false;
  gc.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == cfd && t == stack::socket_event_type::connected) {
      connected = true;
    }
  });
  ASSERT_TRUE(
      gc.nk_connect(cfd, {rig.server.module->config().address, 7200}).ok());
  rig.bed.run_for(milliseconds(100));
  EXPECT_TRUE(connected);

  // No chunk leaked anywhere, the retired rogue channel included.
  for (const auto vm : rig.engine().attached_vms()) {
    auto* ch = rig.engine().channel_of(vm);
    EXPECT_EQ(ch->pool.chunks_free(), ch->pool.chunk_count());
  }
}

TEST(netkernel_firewall, probation_expiry_lifts_quarantine) {
  firewall_rig rig{milliseconds(10)};
  hostile_guest attacker{rig.engine(), rig.rogue_id(), 7};
  rig.storm_until_quarantined(attacker);
  ASSERT_TRUE(rig.engine().quarantined(rig.rogue_id()));

  rig.bed.run_for(milliseconds(12));
  EXPECT_FALSE(rig.engine().quarantined(rig.rogue_id()));

  // A re-attach after probation comes up clean.
  guest_lib& fresh =
      rig.engine().attach_vm(*rig.rogue->vm, *rig.rogue->module);
  (void)fresh;
  EXPECT_EQ(rig.engine().abuse_level_of(rig.rogue_id()), abuse_level::ok);
  EXPECT_NE(rig.engine().channel_of(rig.rogue_id()), nullptr);
}

TEST(netkernel_firewall, reattach_during_probation_stays_quarantined) {
  firewall_rig rig{milliseconds(50)};
  hostile_guest attacker{rig.engine(), rig.rogue_id(), 7};
  rig.storm_until_quarantined(attacker);
  ASSERT_TRUE(rig.engine().quarantined(rig.rogue_id()));
  const sim_time readmit_at = rig.engine().quarantine_log().front().readmit_at;
  ASSERT_GT(readmit_at, rig.bed.sim().now() - milliseconds(50));

  // Probation still running: the VM attaches, but comes up quarantined with
  // its job lanes refused until the clock (scheduled at attach) clears it.
  (void)rig.engine().attach_vm(*rig.rogue->vm, *rig.rogue->module);
  EXPECT_EQ(rig.engine().abuse_level_of(rig.rogue_id()),
            abuse_level::quarantined);

  rig.bed.run_for(milliseconds(60));
  EXPECT_FALSE(rig.engine().quarantined(rig.rogue_id()));
  EXPECT_EQ(rig.engine().abuse_level_of(rig.rogue_id()), abuse_level::ok);
  EXPECT_GE(rig.engine()
                .metrics()
                .value_of("vms_readmitted")
                .value_or(0.0),
            1.0);
}

// --- tenant-facing stat pages (DESIGN.md §16) ------------------------------

// Drives one echo connection, then asks the page for TCP_INFO: the row must
// carry live transport telemetry (srtt, cwnd, byte counters) for the guest
// fd, and the option must be rejected as read-only on the set path.
TEST(netkernel_statpage, tcp_info_live_after_refresh) {
  nk_pair rig;
  auto& gs = *rig.server.glib;
  auto& gc = *rig.client.glib;

  const auto lfd = gs.nk_socket().value();
  ASSERT_TRUE(gs.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(gs.nk_listen(lfd).ok());
  gs.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      while (gs.nk_accept(lfd).ok()) {
      }
    }
  });
  const auto cfd = gc.nk_socket().value();
  gc.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == cfd && t == stack::socket_event_type::connected) {
      (void)gc.nk_send(cfd, buffer::pattern(200000, 0));
    }
  });
  ASSERT_TRUE(
      gc.nk_connect(cfd, {rig.server.module->config().address, 7000}).ok());
  rig.bed.run_for(seconds(1));

  // The attach-time page predates the connection; a refresh brings it live.
  ASSERT_TRUE(gc.nk_stat_refresh().ok());
  rig.bed.run_for(milliseconds(10));

  const auto info = gc.nk_getsockopt(cfd, nk_option::tcp_info);
  ASSERT_TRUE(info.ok());
  EXPECT_STREQ(info.value().transport, "tcp");
  EXPECT_STREQ(info.value().state, "established");
  EXPECT_STREQ(info.value().cc, "cubic");
  EXPECT_GT(info.value().srtt_ns, 0u);
  EXPECT_GT(info.value().min_rtt_ns, 0u);
  EXPECT_GT(info.value().cwnd_bytes, 0u);
  EXPECT_GT(info.value().bytes_out, 0u);
  EXPECT_EQ(info.value().remote_port, 7000u);

  const auto vm = gc.nk_stack_stats();
  ASSERT_TRUE(vm.ok());
  EXPECT_GT(vm.value().publish_seq, 1u);  // attach publish + refresh
  EXPECT_EQ(vm.value().epoch, 0u);
  EXPECT_EQ(vm.value().flags & shm::stat_frozen, 0u);
  EXPECT_GE(vm.value().sockets, 1u);
  EXPECT_GT(vm.value().pool_chunks_free, 0u);

  // TCP_INFO is read-only and unknown fds have no row.
  EXPECT_EQ(gc.nk_setsockopt(cfd, nk_option::tcp_info, 1).error(),
            errc::invalid_argument);
  EXPECT_EQ(gc.nk_getsockopt(0xdeadu, nk_option::tcp_info).error(),
            errc::not_found);
  EXPECT_EQ(gc.nk_getsockopt(cfd, nk_option::nagle).error(),
            errc::not_supported);
}

// Same contract over the nkq transport: a guest on an nkq-backed NSM gets
// live rows tagged "nkq" with the reliable-UDP stack's telemetry.
TEST(netkernel_statpage, nkq_socket_reports_live_stats) {
  testbed bed{apps::datacenter_params(3)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.transport = "nkq";
  virt::vm_config vm_cfg;
  vm_cfg.name = "nkq-client";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "nkq-server";
  nsm_cfg.name = "nsm-nkq-srv";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  auto& gs = *server.glib;
  auto& gc = *client.glib;
  const auto lfd = gs.nk_socket().value();
  ASSERT_TRUE(gs.nk_bind(lfd, 7100).ok());
  ASSERT_TRUE(gs.nk_listen(lfd).ok());
  gs.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == lfd && t == stack::socket_event_type::accept_ready) {
      while (gs.nk_accept(lfd).ok()) {
      }
    }
  });
  const auto cfd = gc.nk_socket().value();
  gc.set_event_handler([&](std::uint32_t fd, stack::socket_event_type t,
                           errc) {
    if (fd == cfd && t == stack::socket_event_type::connected) {
      (void)gc.nk_send(cfd, buffer::pattern(100000, 0));
    }
  });
  ASSERT_TRUE(
      gc.nk_connect(cfd, {server.module->config().address, 7100}).ok());
  bed.run_for(seconds(1));

  ASSERT_TRUE(gc.nk_stat_refresh().ok());
  bed.run_for(milliseconds(10));

  const auto info = gc.nk_getsockopt(cfd, nk_option::tcp_info);
  ASSERT_TRUE(info.ok());
  EXPECT_STREQ(info.value().transport, "nkq");
  EXPECT_GT(info.value().srtt_ns, 0u);
  EXPECT_GT(info.value().cwnd_bytes, 0u);
  EXPECT_GT(info.value().bytes_out, 0u);
}

// NSM failover republishes the page under the bumped attachment epoch, so a
// purely in-guest reader can tell its stack was replaced.
TEST(netkernel_statpage, failover_bumps_page_epoch) {
  nk_pair rig;
  auto& gc = *rig.client.glib;
  rig.bed.run_for(milliseconds(10));
  ASSERT_TRUE(gc.nk_stack_stats().ok());
  ASSERT_EQ(gc.nk_stack_stats().value().epoch, 0u);

  core_engine& ce = rig.bed.netkernel(side::a);
  const nsm_id dead = rig.client.module->id();
  ce.service_of(dead)->fail();
  nsm_config fresh = rig.client.module->config();
  fresh.name = "nsm-a2";
  fresh.form = nsm_form::container;
  ce.replace_nsm(dead, fresh);
  rig.bed.run_for(milliseconds(200));  // boot + switchover republish

  const auto vm = gc.nk_stack_stats();
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ(vm.value().epoch, 1u);
  EXPECT_EQ(vm.value().flags & shm::stat_frozen, 0u);
}

// Quarantine freezes the page: the terminal snapshot carries stat_frozen and
// never advances again, even though the retired channel stays mapped.
TEST(netkernel_statpage, quarantine_freezes_page) {
  firewall_rig rig{sim_time::zero()};
  auto& rogue_glib = *rig.rogue->glib;
  hostile_guest attacker{rig.engine(), rig.rogue_id(), 21};
  rig.storm_until_quarantined(attacker);
  ASSERT_TRUE(rig.engine().quarantined(rig.rogue_id()));

  // The guest can still read its (terminal) page through the retired
  // channel and learns why its sockets died.
  shm::stat_snapshot snap;
  ASSERT_TRUE(rogue_glib.nk_stat_snapshot(snap));
  EXPECT_NE(snap.vm.flags & shm::stat_frozen, 0u);
  const auto frozen_seq = snap.vm.publish_seq;

  // The page never advances again: refresh requests go nowhere (the VM is
  // detached from the engine) and time alone changes nothing.
  rig.bed.run_for(milliseconds(50));
  ASSERT_TRUE(rogue_glib.nk_stat_snapshot(snap));
  EXPECT_EQ(snap.vm.publish_seq, frozen_seq);
  EXPECT_NE(snap.vm.flags & shm::stat_frozen, 0u);

  // The clean neighbor's page is alive and unfrozen.
  ASSERT_TRUE(rig.client.glib->nk_stack_stats().ok());
  EXPECT_EQ(rig.client.glib->nk_stack_stats().value().flags &
                shm::stat_frozen,
            0u);
}

TEST(netkernel_firewall, manual_readmit_clears_permanent_quarantine) {
  firewall_rig rig{sim_time::zero()};
  hostile_guest attacker{rig.engine(), rig.rogue_id(), 7};
  rig.storm_until_quarantined(attacker);
  ASSERT_TRUE(rig.engine().quarantined(rig.rogue_id()));

  // Permanent: no probation clock runs this down.
  rig.bed.run_for(milliseconds(50));
  EXPECT_TRUE(rig.engine().quarantined(rig.rogue_id()));

  EXPECT_TRUE(rig.engine().readmit_vm(rig.rogue_id()));
  EXPECT_FALSE(rig.engine().quarantined(rig.rogue_id()));
  // Nothing left to parole.
  EXPECT_FALSE(rig.engine().readmit_vm(rig.rogue_id()));
}

}  // namespace
}  // namespace nk::core
