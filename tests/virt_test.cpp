// Virtualization-layer tests: guest personalities, vSwitch paths, host
// resources, VM wiring.
#include <gtest/gtest.h>

#include "core/nsm.hpp"
#include "virt/guest_os.hpp"
#include "virt/hypervisor.hpp"
#include "virt/machine.hpp"
#include "virt/vswitch.hpp"

namespace nk::virt {
namespace {

TEST(guest_os, native_congestion_control) {
  EXPECT_EQ(native_cc(guest_os::linux_kernel), tcp::cc_algorithm::cubic);
  EXPECT_EQ(native_cc(guest_os::windows_server), tcp::cc_algorithm::compound);
  EXPECT_EQ(native_cc(guest_os::freebsd), tcp::cc_algorithm::newreno);
}

TEST(guest_os, bbr_only_ships_on_linux) {
  EXPECT_TRUE(natively_available(guest_os::linux_kernel,
                                 tcp::cc_algorithm::bbr));
  EXPECT_FALSE(natively_available(guest_os::windows_server,
                                  tcp::cc_algorithm::bbr));
  EXPECT_FALSE(natively_available(guest_os::freebsd, tcp::cc_algorithm::bbr));
}

TEST(machine, windows_guest_cannot_mount_bbr_natively) {
  sim::simulator s;
  hypervisor host{s, host_config{.name = "h", .cores = 4}};
  vm_config cfg;
  cfg.name = "win";
  cfg.os = guest_os::windows_server;
  cfg.address = net::ipv4_addr::from_octets(10, 0, 0, 1);
  cfg.guest_cc = tcp::cc_algorithm::bbr;
  // This is the deployment barrier of §1: no NetKernel, no BBR on Windows.
  EXPECT_THROW((void)host.create_vm(cfg), std::invalid_argument);
}

TEST(machine, guest_stack_defaults_to_os_native_cc) {
  sim::simulator s;
  hypervisor host{s, host_config{.name = "h", .cores = 4}};
  vm_config cfg;
  cfg.name = "win";
  cfg.os = guest_os::windows_server;
  cfg.address = net::ipv4_addr::from_octets(10, 0, 0, 1);
  machine& vm = host.create_vm(cfg);
  ASSERT_NE(vm.guest_stack(), nullptr);
  // Open a socket and check its controller name.
  auto listener = vm.guest_stack()->tcp_listen(80);
  ASSERT_TRUE(listener.ok());
  // The config flows into new connections; verify via a connect tcb.
  auto conn = vm.guest_stack()->tcp_connect(
      {net::ipv4_addr::from_octets(10, 0, 0, 2), 80});
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(vm.guest_stack()->tcb_of(conn.value())->cc().name(), "compound");
}

TEST(machine, netkernel_only_vm_has_no_guest_stack) {
  sim::simulator s;
  hypervisor host{s, host_config{.name = "h", .cores = 4}};
  vm_config cfg;
  cfg.name = "nk";
  cfg.address = net::ipv4_addr::from_octets(10, 0, 0, 1);
  cfg.legacy_networking = false;
  machine& vm = host.create_vm(cfg);
  EXPECT_EQ(vm.guest_stack(), nullptr);
}

TEST(hypervisor, core_pool_exhausts) {
  sim::simulator s;
  hypervisor host{s, host_config{.name = "h", .cores = 3}};
  // Core 0 is reserved for the vSwitch.
  EXPECT_EQ(host.cores_available(), 2);
  EXPECT_NE(host.allocate_core(), nullptr);
  EXPECT_NE(host.allocate_core(), nullptr);
  EXPECT_EQ(host.allocate_core(), nullptr);
}

TEST(hypervisor, vm_ids_are_unique) {
  sim::simulator s;
  hypervisor host{s, host_config{.name = "h", .cores = 8}};
  vm_config cfg;
  cfg.legacy_networking = false;
  cfg.address = net::ipv4_addr::from_octets(10, 0, 0, 1);
  machine& a = host.create_vm(cfg);
  cfg.address = net::ipv4_addr::from_octets(10, 0, 0, 2);
  machine& b = host.create_vm(cfg);
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(host.vm_by_id(a.id()), &a);
  EXPECT_EQ(host.vm_by_id(b.id()), &b);
}

TEST(vswitch, software_hop_charges_core) {
  sim::simulator s;
  sim::cpu_core core{s, "sw"};
  vswitch sw{"sw"};
  sw.set_cost(&core, vswitch_cost{nanoseconds(500), 0.0});
  int delivered = 0;
  const int port = sw.add_port([&](net::packet) { ++delivered; }, false);
  const auto dst = net::ipv4_addr::from_octets(10, 0, 0, 1);
  sw.set_route(dst, port);

  net::packet p;
  p.ip.dst = dst;
  sw.ingress(vswitch::uplink_port, p);
  s.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sw.stats().software_forwards, 1u);
  EXPECT_EQ(core.busy_time(), nanoseconds(500));
}

TEST(vswitch, sriov_to_uplink_bypasses_host) {
  sim::simulator s;
  sim::cpu_core core{s, "sw"};
  vswitch sw{"sw"};
  sw.set_cost(&core, vswitch_cost{nanoseconds(500), 0.0});
  net::packet out;
  bool sent = false;
  sw.set_uplink([&](net::packet p) {
    out = std::move(p);
    sent = true;
  });
  const int vf = sw.add_port([](net::packet) {}, true);  // SR-IOV VF
  (void)vf;

  net::packet p;
  p.ip.dst = net::ipv4_addr::from_octets(99, 0, 0, 1);  // remote
  sw.ingress(0, p);  // from the VF port
  s.run();
  EXPECT_TRUE(sent);
  EXPECT_EQ(sw.stats().embedded_forwards, 1u);
  EXPECT_EQ(core.busy_time(), sim_time::zero());  // no host CPU spent
}

TEST(vswitch, unknown_destination_from_wire_is_dropped) {
  sim::simulator s;
  vswitch sw{"sw"};
  net::packet p;
  p.ip.dst = net::ipv4_addr::from_octets(1, 2, 3, 4);
  sw.ingress(vswitch::uplink_port, p);
  EXPECT_EQ(sw.stats().no_route, 1u);
}

TEST(hypervisor, two_hosts_route_vm_to_vm) {
  sim::simulator s;
  hypervisor ha{s, host_config{.name = "ha", .cores = 6}};
  hypervisor hb{s, host_config{.name = "hb", .cores = 6}};
  phys::link_config wire;
  wire.rate = data_rate::gbps(10);
  wire.propagation_delay = microseconds(10);
  hypervisor::connect_hosts(ha, hb, wire);

  vm_config ca;
  ca.name = "vma";
  ca.address = net::ipv4_addr::from_octets(10, 0, 1, 1);
  machine& vma = ha.create_vm(ca);
  vm_config cb;
  cb.name = "vmb";
  cb.address = net::ipv4_addr::from_octets(10, 0, 2, 1);
  machine& vmb = hb.create_vm(cb);

  // End-to-end TCP through vNIC -> vSwitch -> pNIC -> wire -> ... -> vNIC.
  ASSERT_TRUE(vmb.guest_stack()->tcp_listen(5001).ok());
  auto conn = vma.guest_stack()->tcp_connect({cb.address, 5001});
  ASSERT_TRUE(conn.ok());
  s.run_until(milliseconds(50));
  ASSERT_NE(vma.guest_stack()->tcb_of(conn.value()), nullptr);
  EXPECT_EQ(vma.guest_stack()->tcb_of(conn.value())->state(),
            tcp::tcp_state::established);
}

TEST(nsm_forms, profiles_are_ordered_by_weight) {
  using core::nsm_form;
  using core::profile_of;
  const auto vm = profile_of(nsm_form::vm);
  const auto ct = profile_of(nsm_form::container);
  const auto hv = profile_of(nsm_form::hypervisor_module);
  EXPECT_GT(vm.per_op_overhead, ct.per_op_overhead);
  EXPECT_GT(ct.per_op_overhead, hv.per_op_overhead);
  EXPECT_GT(vm.startup_time, ct.startup_time);
  EXPECT_GT(vm.memory_bytes, hv.memory_bytes);
}

}  // namespace
}  // namespace nk::virt
