// Test harness: two netstacks joined by a duplex link, no virtualization
// layer — the minimal rig for exercising TCP end to end.
#pragma once

#include "phys/link.hpp"
#include "phys/nic.hpp"
#include "sim/simulator.hpp"
#include "stack/netstack.hpp"

namespace nk::test {

struct loopback_params {
  std::uint64_t seed = 1;
  phys::link_config wire{};  // applied to both directions
  double forward_loss = -1.0;  // a->b loss override (< 0: use wire.loss_rate)
  tcp::tcp_config tcp_a{};
  tcp::tcp_config tcp_b{};
};

struct loopback {
  explicit loopback(const loopback_params& p = {})
      : sim{p.seed},
        cable{sim, p.wire},
        nic_a{"a"},
        nic_b{"b"},
        a{sim, make_cfg("a", p.tcp_a), net::ipv4_addr::from_octets(10, 0, 0, 1)},
        b{sim, make_cfg("b", p.tcp_b), net::ipv4_addr::from_octets(10, 0, 0, 2)} {
    if (p.forward_loss >= 0.0) cable.forward().set_loss_rate(p.forward_loss);
    phys::attach_duplex(nic_a, nic_b, cable);
    a.bind_netdev(nic_a);
    b.bind_netdev(nic_b);
  }

  static stack::netstack_config make_cfg(const char* name,
                                         const tcp::tcp_config& tcp) {
    stack::netstack_config cfg;
    cfg.name = name;
    cfg.tcp = tcp;
    return cfg;
  }

  [[nodiscard]] net::socket_addr addr_b(std::uint16_t port) const {
    return {net::ipv4_addr::from_octets(10, 0, 0, 2), port};
  }
  [[nodiscard]] net::socket_addr addr_a(std::uint16_t port) const {
    return {net::ipv4_addr::from_octets(10, 0, 0, 1), port};
  }

  void run_for(sim_time d) { sim.run_until(sim.now() + d); }

  sim::simulator sim;
  phys::duplex_link cable;
  phys::nic nic_a;
  phys::nic nic_b;
  stack::netstack a;
  stack::netstack b;
};

// Fast LAN defaults: 10 Gb/s, 50 us RTT.
inline loopback_params lan_params(std::uint64_t seed = 1) {
  loopback_params p;
  p.seed = seed;
  p.wire.rate = data_rate::gbps(10);
  p.wire.propagation_delay = microseconds(25);
  tcp::tcp_config t;
  t.rto.min_rto = milliseconds(5);
  t.delayed_ack_timeout = milliseconds(1);
  p.tcp_a = t;
  p.tcp_b = t;
  return p;
}

}  // namespace nk::test
