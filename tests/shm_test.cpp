// Unit tests for the shared-memory substrate: nqe layout, SPSC rings
// (single-threaded semantics and a real two-thread stress), huge-page pool
// isolation, and the prioritized queue set.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <span>
#include <thread>
#include <vector>

#include "shm/hugepage_pool.hpp"
#include "shm/nqe.hpp"
#include "shm/queue_set.hpp"
#include "shm/spsc_ring.hpp"
#include "shm/stat_page.hpp"
#include "shm/steering.hpp"

namespace nk::shm {
namespace {

TEST(nqe, is_one_cache_line) {
  EXPECT_EQ(sizeof(nqe), 64u);
  EXPECT_TRUE(std::is_trivially_copyable_v<nqe>);
}

TEST(nqe, connection_event_classification) {
  EXPECT_TRUE(is_connection_event(nqe_op::req_connect));
  EXPECT_TRUE(is_connection_event(nqe_op::ev_accept));
  EXPECT_TRUE(is_connection_event(nqe_op::req_close));
  EXPECT_FALSE(is_connection_event(nqe_op::req_send));
  EXPECT_FALSE(is_connection_event(nqe_op::ev_data));
  EXPECT_FALSE(is_connection_event(nqe_op::cmp_send));
}

TEST(spsc_ring, push_pop_roundtrip) {
  spsc_ring<int> ring{8};
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(ring.try_pop(v));  // empty
}

TEST(spsc_ring, capacity_rounds_to_power_of_two) {
  spsc_ring<int> ring{5};
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(spsc_ring, wraps_around) {
  spsc_ring<int> ring{4};
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.try_push(round));
    int v = -1;
    ASSERT_TRUE(ring.try_pop(v));
    ASSERT_EQ(v, round);
  }
}

TEST(spsc_ring, batch_operations) {
  spsc_ring<int> ring{8};
  const int in[6] = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.push_batch(std::span{in}), 6u);
  int out[4] = {};
  EXPECT_EQ(ring.pop_batch(std::span{out}), 4u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
  EXPECT_EQ(ring.size_approx(), 2u);
}

TEST(spsc_ring, batch_push_partial_when_nearly_full) {
  spsc_ring<int> ring{4};
  const int in[6] = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.push_batch(std::span{in}), 4u);
}

TEST(spsc_ring, peek_does_not_consume) {
  spsc_ring<int> ring{4};
  ASSERT_TRUE(ring.try_push(42));
  int v = 0;
  ASSERT_TRUE(ring.try_peek(v));
  EXPECT_EQ(v, 42);
  EXPECT_EQ(ring.size_approx(), 1u);
}

// Two real threads hammer the ring; every value must arrive exactly once,
// in order. This is the code path bench/nqe_copy measures.
TEST(spsc_ring, two_thread_stress_preserves_fifo) {
  spsc_ring<std::uint64_t> ring{1024};
  constexpr std::uint64_t count = 1'000'000;

  std::thread producer{[&] {
    for (std::uint64_t i = 0; i < count;) {
      if (ring.try_push(i)) ++i;
    }
  }};

  std::uint64_t expected = 0;
  while (expected < count) {
    std::uint64_t v;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

TEST(hugepage_pool, alloc_free_cycle) {
  hugepage_config cfg;
  cfg.page_size = 64 * 1024;
  cfg.page_count = 2;
  cfg.chunk_size = 8 * 1024;
  hugepage_pool pool{1, cfg};
  EXPECT_EQ(pool.chunk_count(), 16u);
  EXPECT_EQ(pool.chunks_free(), 16u);

  auto c = pool.alloc();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(pool.chunks_free(), 15u);
  EXPECT_TRUE(pool.free(c.value()).ok());
  EXPECT_EQ(pool.chunks_free(), 16u);
}

TEST(hugepage_pool, exhaustion_reports_resource_exhausted) {
  hugepage_config cfg;
  cfg.page_size = 16 * 1024;
  cfg.page_count = 1;
  cfg.chunk_size = 8 * 1024;
  hugepage_pool pool{1, cfg};
  auto a = pool.alloc();
  auto b = pool.alloc();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.alloc();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.error(), errc::resource_exhausted);
}

TEST(hugepage_pool, rejects_foreign_descriptors) {
  hugepage_pool mine{1};
  hugepage_pool theirs{2};
  auto c = theirs.alloc();
  ASSERT_TRUE(c.ok());
  // A descriptor minted by pool 2 must not grant access to pool 1 — the
  // §3.1 isolation property.
  EXPECT_EQ(mine.writable(c.value()).error(), errc::permission_denied);
  EXPECT_EQ(mine.free(c.value()).error(), errc::permission_denied);
  data_descriptor d{c.value(), 0, 16};
  EXPECT_EQ(mine.readable(d).error(), errc::permission_denied);
}

TEST(hugepage_pool, rejects_double_free_and_stale_refs) {
  hugepage_pool pool{1};
  auto c = pool.alloc();
  ASSERT_TRUE(pool.free(c.value()).ok());
  EXPECT_EQ(pool.free(c.value()).error(), errc::not_found);
  EXPECT_EQ(pool.writable(c.value()).error(), errc::not_found);
}

TEST(hugepage_pool, bad_frees_are_counted_noops) {
  hugepage_pool pool{1};
  hugepage_pool foreign{2};
  EXPECT_EQ(pool.bad_frees(), 0u);

  // Double free: refused, counted, and the slot is not freed twice.
  auto a = pool.alloc();
  auto b = pool.alloc();
  const auto free_before = pool.chunks_free();
  ASSERT_TRUE(pool.free(a.value()).ok());
  EXPECT_EQ(pool.free(a.value()).error(), errc::not_found);
  EXPECT_EQ(pool.bad_frees(), 1u);
  EXPECT_EQ(pool.chunks_free(), free_before + 1);

  // Free through a foreign pool's ref: refused, counted, and the foreign
  // chunk is untouched.
  auto f = foreign.alloc();
  EXPECT_EQ(pool.free(f.value()).error(), errc::permission_denied);
  EXPECT_EQ(pool.bad_frees(), 2u);
  EXPECT_TRUE(foreign.readable(data_descriptor{f.value(), 0, 1}).ok());

  // Out-of-range index: refused, counted.
  EXPECT_EQ(pool.free(chunk_ref{1, 1u << 30}).error(),
            errc::invalid_argument);
  EXPECT_EQ(pool.bad_frees(), 3u);

  // The abuse corrupted nothing: the live chunk still frees cleanly.
  EXPECT_TRUE(pool.free(b.value()).ok());
  EXPECT_EQ(pool.chunks_free(), pool.chunk_count());
  EXPECT_EQ(pool.bad_frees(), 3u);
}

TEST(hugepage_pool, bounds_checked_descriptors) {
  hugepage_pool pool{1};
  auto c = pool.alloc();
  data_descriptor too_long{c.value(), 4096,
                           static_cast<std::uint32_t>(pool.chunk_size())};
  EXPECT_EQ(pool.readable(too_long).error(), errc::invalid_argument);
  data_descriptor bad_index{chunk_ref{1, 1u << 30}, 0, 16};
  EXPECT_EQ(pool.readable(bad_index).error(), errc::invalid_argument);
}

TEST(hugepage_pool, data_written_is_read_back) {
  hugepage_pool pool{9};
  auto c = pool.alloc();
  auto w = pool.writable(c.value());
  ASSERT_TRUE(w.ok());
  for (std::size_t i = 0; i < 256; ++i) {
    w.value()[i] = static_cast<std::byte>(i);
  }
  auto r = pool.readable(data_descriptor{c.value(), 0, 256});
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(r.value()[i], static_cast<std::byte>(i));
  }
}

TEST(nqe_queue, fifo_when_not_prioritized) {
  nqe_queue q{queue_config{.depth = 16, .prioritized = false}};
  nqe data;
  data.op = nqe_op::req_send;
  nqe conn;
  conn.op = nqe_op::req_connect;
  ASSERT_TRUE(q.push(data));
  ASSERT_TRUE(q.push(conn));
  nqe out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.op, nqe_op::req_send);  // strict FIFO
}

TEST(nqe_queue, connection_events_bypass_data_when_prioritized) {
  nqe_queue q{queue_config{.depth = 16, .prioritized = true}};
  nqe data;
  data.op = nqe_op::req_send;
  nqe conn;
  conn.op = nqe_op::req_connect;
  ASSERT_TRUE(q.push(data));
  ASSERT_TRUE(q.push(data));
  ASSERT_TRUE(q.push(conn));
  nqe out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.op, nqe_op::req_connect);  // jumped the data queue
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.op, nqe_op::req_send);
  EXPECT_EQ(q.size_approx(), 1u);
}

TEST(endpoint_queues, three_independent_queues) {
  endpoint_queues eq{queue_config{.depth = 4}};
  nqe e;
  e.op = nqe_op::req_send;
  ASSERT_TRUE(eq.job.push(e));
  EXPECT_TRUE(eq.completion.empty_approx());
  EXPECT_TRUE(eq.receive.empty_approx());
  EXPECT_EQ(eq.job.size_approx(), 1u);
}

TEST(spsc_ring, free_approx_tracks_space) {
  spsc_ring<int> ring{4};
  EXPECT_EQ(ring.free_approx(), 4u);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.free_approx(), 2u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(ring.free_approx(), 3u);
  while (ring.try_push(0)) {
  }
  EXPECT_EQ(ring.free_approx(), 0u);
}

TEST(nqe_queue, space_approx_follows_data_ring) {
  nqe_queue q{queue_config{.depth = 4}};
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.space_approx(), 4u);
  nqe e;
  e.op = nqe_op::ev_data;
  ASSERT_TRUE(q.push(e));
  ASSERT_TRUE(q.push(e));
  EXPECT_EQ(q.space_approx(), 2u);
}

TEST(nqe, only_pure_data_is_droppable_on_overflow) {
  EXPECT_TRUE(droppable_on_overflow(nqe_op::ev_data));
  EXPECT_TRUE(droppable_on_overflow(nqe_op::ev_udp_data));
  EXPECT_TRUE(droppable_on_overflow(nqe_op::req_recv_window));
  // Lifecycle and credit-bearing nqes must never be discarded: a lost
  // cmp_socket or cmp_send strands a flow permanently.
  EXPECT_FALSE(droppable_on_overflow(nqe_op::cmp_socket));
  EXPECT_FALSE(droppable_on_overflow(nqe_op::cmp_send));
  EXPECT_FALSE(droppable_on_overflow(nqe_op::ev_accept));
  EXPECT_FALSE(droppable_on_overflow(nqe_op::ev_closed));
  EXPECT_FALSE(droppable_on_overflow(nqe_op::req_close));
}

// Batch API under real concurrency: a tiny ring (16 slots, ~4 bits of
// index) makes the free-running counters wrap every few microseconds and
// keeps the producer's tail_cache_ / consumer's head_cache_ permanently
// stale, so every push/pop round trips through the refresh path. Mixed
// batch sizes hit the partial-batch branches. Run under ASan and TSan by
// the CI smoke lanes.
TEST(spsc_ring, two_thread_batch_stress_wraps_and_refreshes_caches) {
  spsc_ring<std::uint64_t> ring{16};
  constexpr std::uint64_t count = 200'000;

  // Yield instead of hard-spinning on a full/empty ring: on a single-CPU
  // host the peer can't run until this thread gives up its quantum, and a
  // 16-slot ring moves at most 16 items per quantum otherwise.
  std::thread producer{[&] {
    std::uint64_t next = 0;
    std::uint64_t batch[7];
    while (next < count) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(1 + next % 7, count - next));
      for (std::size_t i = 0; i < want; ++i) batch[i] = next + i;
      const std::size_t pushed =
          ring.push_batch(std::span<const std::uint64_t>{batch, want});
      next += pushed;
      if (pushed == 0) std::this_thread::yield();
    }
  }};

  std::uint64_t expected = 0;
  std::uint64_t out[5];
  while (expected < count) {
    const std::size_t want =
        static_cast<std::size_t>(1 + expected % 5);
    const std::size_t got = ring.pop_batch(std::span<std::uint64_t>{out, want});
    if (got == 0) std::this_thread::yield();
    for (std::size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i], expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());

  // The 16-slot ring wrapped its index space thousands of times.
  EXPECT_GT(count / ring.capacity(), 10'000u);
}

// The steering mixer must spread tiny sequential keys evenly. libstdc++'s
// std::hash<uint64_t> is the identity — fd 0..N-1 under `% shards` would
// land consecutively and any stride-aligned workload collapses onto a few
// shards. splitmix64's finalizer full-avalanches, so both per-bit balance
// and modulo distribution hold for the keys we actually produce.
TEST(flow_steering, mixer_avalanches_and_balances_sequential_keys) {
  // Avalanche: flipping any single input bit flips ~half the output bits.
  for (int bit = 0; bit < 64; ++bit) {
    int flipped = 0;
    for (std::uint64_t x = 0; x < 64; ++x) {
      const std::uint64_t base = x * 0x0123456789abcdefULL;
      flipped += std::popcount(mix64(base) ^ mix64(base ^ (1ULL << bit)));
    }
    const double avg = flipped / 64.0;
    EXPECT_GT(avg, 24.0) << "weak diffusion from input bit " << bit;
    EXPECT_LT(avg, 40.0) << "weak diffusion from input bit " << bit;
  }

  // Shard balance: sequential fds for a handful of VM ids, and sequential
  // cids for one NSM — the shapes GuestLib and ServiceLib actually emit.
  for (const std::size_t shards : {2u, 4u, 8u}) {
    std::vector<std::size_t> per_shard(shards, 0);
    std::size_t total = 0;
    for (std::uint32_t vm = 1; vm <= 4; ++vm) {
      for (std::uint32_t fd = 0; fd < 1024; ++fd) {
        ++per_shard[flow_shard(vm, fd, shards)];
        ++total;
      }
    }
    for (std::uint32_t cid = 1; cid <= 4096; ++cid) {
      ++per_shard[nsm_shard(7, cid, shards)];
      ++total;
    }
    const double fair = static_cast<double>(total) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_GT(per_shard[s], fair * 0.85) << shards << " shards, shard " << s;
      EXPECT_LT(per_shard[s], fair * 1.15) << shards << " shards, shard " << s;
    }
  }

  // Degenerate counts: everything homes on shard 0.
  EXPECT_EQ(flow_shard(9, 1234, 1), 0u);
  EXPECT_EQ(flow_shard(9, 1234, 0), 0u);
  EXPECT_EQ(nsm_shard(3, 99, 1), 0u);
}

// --- stat_page (tenant-facing observability, DESIGN.md §16) ----------------

TEST(stat_page, publish_read_roundtrip_and_versioning) {
  stat_page page;
  EXPECT_FALSE(page.ever_published());
  stat_snapshot out;
  EXPECT_FALSE(page.read(out));  // nothing published yet

  stat_snapshot snap{};
  snap.vm.publish_seq = 1;
  snap.vm.epoch = 3;
  snap.vm.sockets = 2;
  snap.rows[0].fd = 4;
  set_stat_string(snap.rows[0].transport, sizeof(snap.rows[0].transport),
                  "tcp");
  set_stat_string(snap.rows[0].state, sizeof(snap.rows[0].state),
                  "established");
  snap.rows[0].srtt_ns = 250'000;
  snap.rows[1].fd = 9;
  page.publish(snap);

  EXPECT_TRUE(page.ever_published());
  EXPECT_EQ(page.version(), 2u);  // seqlock: one publish = +2, even at rest
  ASSERT_TRUE(page.read(out));
  EXPECT_EQ(out.vm.epoch, 3u);
  ASSERT_NE(out.find(4), nullptr);
  EXPECT_STREQ(out.find(4)->transport, "tcp");
  EXPECT_STREQ(out.find(4)->state, "established");
  EXPECT_EQ(out.find(4)->srtt_ns, 250'000u);
  ASSERT_NE(out.find(9), nullptr);
  EXPECT_EQ(out.find(7), nullptr);  // fd 7 is not a published row

  snap.vm.publish_seq = 2;
  snap.vm.flags |= stat_frozen;
  page.publish(snap);
  EXPECT_EQ(page.version(), 4u);
  ASSERT_TRUE(page.read(out));
  EXPECT_EQ(out.vm.publish_seq, 2u);
  EXPECT_NE(out.vm.flags & stat_frozen, 0u);
}

TEST(stat_page, set_stat_string_truncates_and_terminates) {
  char buf[8];
  set_stat_string(buf, sizeof(buf), "established");  // longer than buf
  EXPECT_EQ(buf[sizeof(buf) - 1], '\0');
  EXPECT_STREQ(buf, "establi");
  set_stat_string(buf, sizeof(buf), "ok");
  EXPECT_STREQ(buf, "ok");
}

// Two-thread seqlock stress under socket churn: a writer republishing
// snapshots whose every field is derived from the publish sequence (and
// whose row count grows and shrinks, as sockets open and close), against a
// reader spinning on read(). Any torn read — a row mixing fields from two
// publishes, or a row count from a different generation than its rows —
// fails the self-consistency check. Run under TSan via the smoke label.
TEST(stat_page, concurrent_reader_never_observes_torn_snapshot) {
  stat_page page;
  constexpr std::uint64_t publishes = 4000;

  auto fill = [](stat_snapshot& snap, std::uint64_t seq) {
    snap = stat_snapshot{};
    snap.vm.publish_seq = seq;
    // Churn: the socket count sweeps the full row range and back.
    const auto phase = seq % (2 * stat_snapshot::max_rows);
    snap.vm.sockets = phase < stat_snapshot::max_rows
                          ? phase
                          : 2 * stat_snapshot::max_rows - phase;
    snap.vm.epoch = seq;
    snap.vm.published_ns = seq * 1000;
    for (std::uint64_t r = 0; r < snap.vm.sockets; ++r) {
      auto& row = snap.rows[r];
      row.fd = seq + r;
      row.srtt_ns = seq ^ r;
      row.cwnd_bytes = seq + 2 * r;
      row.retransmits = seq;
      row.bytes_in = seq * 3 + r;
    }
  };

  std::atomic<bool> done{false};
  std::uint64_t reads = 0, torn = 0;
  std::thread reader([&] {
    stat_snapshot out;
    while (!done.load(std::memory_order_acquire)) {
      if (!page.read(out)) continue;
      ++reads;
      const auto seq = out.vm.publish_seq;
      stat_snapshot expect;
      fill(expect, seq);
      if (out.vm.sockets != expect.vm.sockets || out.vm.epoch != seq ||
          out.vm.published_ns != seq * 1000) {
        ++torn;
        continue;
      }
      for (std::uint64_t r = 0; r < out.vm.sockets; ++r) {
        if (out.rows[r].fd != seq + r || out.rows[r].srtt_ns != (seq ^ r) ||
            out.rows[r].cwnd_bytes != seq + 2 * r ||
            out.rows[r].retransmits != seq ||
            out.rows[r].bytes_in != seq * 3 + r) {
          ++torn;
          break;
        }
      }
    }
  });

  stat_snapshot snap;
  for (std::uint64_t seq = 1; seq <= publishes; ++seq) {
    fill(snap, seq);
    page.publish(snap);
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn, 0u);
  EXPECT_GT(reads, 0u);
  EXPECT_EQ(page.version(), 2 * publishes);
  // The final snapshot is intact after the storm.
  stat_snapshot out;
  ASSERT_TRUE(page.read(out));
  EXPECT_EQ(out.vm.publish_seq, publishes);
}

TEST(hugepage_pool, exhaustion_toggle_fails_allocs_and_counts) {
  hugepage_pool pool{1, hugepage_config{.page_size = 64 * 1024,
                                        .page_count = 1,
                                        .chunk_size = 8 * 1024}};
  pool.set_exhausted(true);
  EXPECT_FALSE(pool.alloc());
  EXPECT_FALSE(pool.alloc());
  EXPECT_EQ(pool.failed_allocs(), 2u);
  EXPECT_EQ(pool.chunks_free(), pool.chunk_count());  // nothing handed out
  pool.set_exhausted(false);
  auto chunk = pool.alloc();
  ASSERT_TRUE(chunk);
  EXPECT_EQ(pool.failed_allocs(), 2u);
  EXPECT_TRUE(pool.free(chunk.value()).ok());
}

}  // namespace
}  // namespace nk::shm
