// Unit tests for the discrete-event simulator, the cpu_core resource, and
// the seeded chaos schedule.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/chaos.hpp"
#include "sim/cpu_core.hpp"
#include "sim/simulator.hpp"

namespace nk::sim {
namespace {

TEST(simulator, events_run_in_time_order) {
  simulator s;
  std::vector<int> order;
  s.schedule(milliseconds(3), [&] { order.push_back(3); });
  s.schedule(milliseconds(1), [&] { order.push_back(1); });
  s.schedule(milliseconds(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(3));
}

TEST(simulator, equal_times_run_fifo) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(milliseconds(1), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(simulator, nested_scheduling) {
  simulator s;
  sim_time inner_time{};
  s.schedule(milliseconds(1), [&] {
    s.schedule(milliseconds(1), [&] { inner_time = s.now(); });
  });
  s.run();
  EXPECT_EQ(inner_time, milliseconds(2));
}

TEST(simulator, cancel_prevents_execution) {
  simulator s;
  bool ran = false;
  timer t = s.schedule(milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(t.pending());
  t.cancel();
  EXPECT_FALSE(t.pending());
  s.run();
  EXPECT_FALSE(ran);
}

TEST(simulator, cancel_after_fire_is_noop) {
  simulator s;
  int count = 0;
  timer t = s.schedule(milliseconds(1), [&] { ++count; });
  s.run();
  t.cancel();  // must not crash or affect anything
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(t.pending());
}

TEST(simulator, run_until_advances_clock_exactly) {
  simulator s;
  int fired = 0;
  s.schedule(milliseconds(1), [&] { ++fired; });
  s.schedule(milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(s.run_until(milliseconds(5)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), milliseconds(5));
  EXPECT_TRUE(s.run_until(milliseconds(20)));
  EXPECT_EQ(fired, 2);
}

TEST(simulator, stop_interrupts_run) {
  simulator s;
  int fired = 0;
  s.schedule(milliseconds(1), [&] {
    ++fired;
    s.stop();
  });
  s.schedule(milliseconds(2), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(simulator, events_processed_counts_fired_only) {
  simulator s;
  timer t = s.schedule(milliseconds(1), [] {});
  s.schedule(milliseconds(2), [] {});
  t.cancel();
  s.run();
  EXPECT_EQ(s.events_processed(), 1u);
}

TEST(cpu_core, serializes_work) {
  simulator s;
  cpu_core core{s, "c0"};
  std::vector<sim_time> done;
  core.execute(microseconds(10), [&] { done.push_back(s.now()); });
  core.execute(microseconds(10), [&] { done.push_back(s.now()); });
  core.execute(microseconds(10), [&] { done.push_back(s.now()); });
  s.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], microseconds(10));
  EXPECT_EQ(done[1], microseconds(20));
  EXPECT_EQ(done[2], microseconds(30));
}

TEST(cpu_core, throughput_is_capped_by_service_time) {
  simulator s;
  cpu_core core{s, "c0"};
  // Submit 1000 items of 1 us each over time; the last completes at 1 ms.
  int completed = 0;
  for (int i = 0; i < 1000; ++i) {
    core.execute(microseconds(1), [&] { ++completed; });
  }
  s.run();
  EXPECT_EQ(completed, 1000);
  EXPECT_EQ(s.now(), milliseconds(1));
}

TEST(cpu_core, idle_gaps_do_not_count_as_busy) {
  simulator s;
  cpu_core core{s, "c0"};
  core.execute(microseconds(10), [] {});
  s.run();  // now = 10 us, all busy
  EXPECT_DOUBLE_EQ(core.utilization(), 1.0);
  s.schedule(microseconds(10), [] {});
  s.run();  // now = 20 us, half busy
  EXPECT_DOUBLE_EQ(core.utilization(), 0.5);
  EXPECT_EQ(core.busy_time(), microseconds(10));
}

TEST(cpu_core, backlog_reflects_committed_future_work) {
  simulator s;
  cpu_core core{s, "c0"};
  core.execute(microseconds(5), [] {});
  core.execute(microseconds(5), [] {});
  EXPECT_EQ(core.backlog(), microseconds(10));
  s.run();
  EXPECT_EQ(core.backlog(), sim_time::zero());
}

TEST(cpu_core, zero_cost_preserves_fifo) {
  simulator s;
  cpu_core core{s, "c0"};
  std::vector<int> order;
  core.execute(sim_time::zero(), [&] { order.push_back(1); });
  core.execute(sim_time::zero(), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- chaos schedule --------------------------------------------------------

TEST(chaos_schedule, identical_seeds_replay_identical_timelines) {
  auto run_once = [](std::uint64_t seed) {
    simulator s;
    chaos_schedule chaos{s, seed};
    chaos.storm("storm", microseconds(10), microseconds(100), 8,
                [](std::size_t) {});
    chaos.pulse("pulse", microseconds(50), microseconds(20), [](bool) {});
    chaos.at(microseconds(5), "single", [] {});
    chaos.arm();
    s.run();
    std::vector<std::pair<long long, std::string>> fired;
    for (const auto& ev : chaos.log()) {
      fired.emplace_back(ev.at.count(), ev.name);
    }
    return fired;
  };
  EXPECT_EQ(run_once(7), run_once(7));  // bit-for-bit replay
  EXPECT_NE(run_once(7), run_once(8));  // the seed is the timeline
}

TEST(chaos_schedule, ties_fire_in_composition_order) {
  simulator s;
  chaos_schedule chaos{s, 1};
  std::vector<int> order;
  chaos.at(microseconds(10), "b", [&] { order.push_back(2); });
  chaos.at(microseconds(5), "a", [&] { order.push_back(1); });
  chaos.at(microseconds(10), "c", [&] { order.push_back(3); });
  chaos.arm();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  ASSERT_EQ(chaos.log().size(), 3u);
  EXPECT_EQ(chaos.log()[0].name, "a");
  EXPECT_EQ(chaos.log()[1].name, "b");
  EXPECT_EQ(chaos.log()[2].name, "c");
}

TEST(chaos_schedule, storm_lands_in_window_and_pulse_brackets) {
  simulator s;
  chaos_schedule chaos{s, 42};
  const sim_time start = microseconds(100);
  const sim_time window = microseconds(400);
  std::size_t fired = 0;
  chaos.storm("burst", start, window, 16, [&](std::size_t) { ++fired; });
  bool on = false;
  sim_time on_at{}, off_at{};
  chaos.pulse("exhaust", microseconds(20), microseconds(60), [&](bool v) {
    on = v;
    (v ? on_at : off_at) = s.now();
  });
  chaos.arm();
  EXPECT_TRUE(chaos.armed());
  EXPECT_EQ(chaos.entries(), 18u);  // 16 storm shots + pulse on/off
  s.run();

  EXPECT_EQ(fired, 16u);
  for (const auto& ev : chaos.log()) {
    if (ev.name.rfind("burst#", 0) == 0) {
      EXPECT_GE(ev.at, start);
      EXPECT_LT(ev.at, start + window);
    }
  }
  EXPECT_FALSE(on);  // pulse ended off
  EXPECT_EQ(on_at, microseconds(20));
  EXPECT_EQ(off_at, microseconds(80));
}

}  // namespace
}  // namespace nk::sim
