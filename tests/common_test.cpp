// Unit tests for src/common: buffers, chains, rng, stats, token bucket,
// units.
#include <gtest/gtest.h>

#include "common/buffer.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/token_bucket.hpp"
#include "common/units.hpp"

namespace nk {
namespace {

TEST(units, transmission_time_is_exact_for_round_rates) {
  const auto rate = data_rate::gbps(40);
  // 5000 bytes at 40 Gb/s = 1 us.
  EXPECT_EQ(rate.transmission_time(5000), microseconds(1));
}

TEST(units, rate_of_inverts_transmission) {
  const auto rate = rate_of(1'000'000, milliseconds(1));
  EXPECT_DOUBLE_EQ(rate.bps(), 8e9);
}

TEST(units, zero_interval_rate_is_zero) {
  EXPECT_TRUE(rate_of(1000, sim_time::zero()).is_zero());
}

TEST(units, rate_arithmetic) {
  const auto r = data_rate::mbps(10) * 2.0 + data_rate::mbps(5);
  EXPECT_DOUBLE_EQ(r.bps(), 25e6);
  EXPECT_LT(data_rate::mbps(1), data_rate::mbps(2));
}

TEST(rng, deterministic_for_same_seed) {
  rng a{42};
  rng b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(rng, different_seeds_diverge) {
  rng a{1};
  rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(rng, doubles_in_unit_interval) {
  rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(rng, chance_extremes) {
  rng r{7};
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(rng, chance_matches_probability) {
  rng r{11};
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(rng, exponential_mean) {
  rng r{13};
  double sum = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.15);
}

TEST(buffer, pattern_roundtrip) {
  const buffer b = buffer::pattern(4096, 1234);
  EXPECT_TRUE(b.matches_pattern(1234));
  EXPECT_FALSE(b.matches_pattern(1235));
}

TEST(buffer, slices_share_storage_and_match_offsets) {
  const buffer b = buffer::pattern(1000, 0);
  const buffer mid = b.slice(100, 200);
  EXPECT_EQ(mid.size(), 200u);
  EXPECT_TRUE(mid.matches_pattern(100));
}

TEST(buffer, slice_clamps_to_bounds) {
  const buffer b = buffer::pattern(10, 0);
  EXPECT_EQ(b.slice(5, 100).size(), 5u);
  EXPECT_TRUE(b.slice(10, 1).empty());
  EXPECT_TRUE(b.slice(99, 1).empty());
}

TEST(buffer, equality_compares_bytes) {
  EXPECT_EQ(buffer::pattern(64, 7), buffer::pattern(64, 7));
  EXPECT_FALSE(buffer::pattern(64, 7) == buffer::pattern(64, 8));
}

TEST(buffer_chain, append_and_pop_across_parts) {
  buffer_chain chain;
  chain.append(buffer::pattern(100, 0));
  chain.append(buffer::pattern(100, 100));
  chain.append(buffer::pattern(100, 200));
  EXPECT_EQ(chain.size(), 300u);

  const buffer head = chain.pop(150);
  EXPECT_EQ(head.size(), 150u);
  EXPECT_TRUE(head.matches_pattern(0));
  EXPECT_EQ(chain.size(), 150u);

  const buffer rest = chain.pop(1000);
  EXPECT_TRUE(rest.matches_pattern(150));
  EXPECT_TRUE(chain.empty());
}

TEST(buffer_chain, peek_does_not_consume) {
  buffer_chain chain;
  chain.append(buffer::pattern(64, 0));
  chain.append(buffer::pattern(64, 64));
  const buffer peeked = chain.peek(32, 64);
  EXPECT_TRUE(peeked.matches_pattern(32));
  EXPECT_EQ(chain.size(), 128u);
}

TEST(buffer_chain, splice_moves_everything) {
  buffer_chain a;
  buffer_chain b;
  a.append(buffer::pattern(10, 0));
  b.append(buffer::pattern(10, 10));
  b.append(buffer::pattern(10, 20));
  a.append(std::move(b));
  EXPECT_EQ(a.size(), 30u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(a.pop(30).matches_pattern(0));
}

TEST(buffer_chain, consume_partial_part) {
  buffer_chain chain;
  chain.append(buffer::pattern(100, 0));
  chain.consume(30);
  EXPECT_EQ(chain.size(), 70u);
  EXPECT_TRUE(chain.pop(70).matches_pattern(30));
}

TEST(result, value_and_error_paths) {
  result<int> ok{7};
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.error(), errc::ok);

  result<int> bad{errc::would_block};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), errc::would_block);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(result, status_void) {
  status good{};
  EXPECT_TRUE(good.ok());
  status bad{errc::not_found};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(to_string(bad.error()), "not_found");
}

TEST(stats, running_moments) {
  running_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(stats, percentiles) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.percentile(0), 1.0);
  EXPECT_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(99), 99.0, 1.0);
  s.add(1000);  // re-sorting after append must work
  EXPECT_EQ(s.max(), 1000.0);
}

TEST(stats, percentile_nearest_rank_edges) {
  // Empty set answers 0 for every p.
  sample_set empty;
  EXPECT_EQ(empty.percentile(0), 0.0);
  EXPECT_EQ(empty.percentile(50), 0.0);
  EXPECT_EQ(empty.percentile(100), 0.0);

  // A single sample is every percentile, including p = 0.
  sample_set one;
  one.add(42.0);
  EXPECT_EQ(one.percentile(0), 42.0);
  EXPECT_EQ(one.percentile(50), 42.0);
  EXPECT_EQ(one.percentile(99), 42.0);
  EXPECT_EQ(one.percentile(100), 42.0);
  EXPECT_EQ(one.p99(), 42.0);

  // Nearest rank on two samples: p50 is the FIRST sample (rank ceil(1)),
  // anything above 50 the second.
  sample_set two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_EQ(two.percentile(0), 10.0);
  EXPECT_EQ(two.percentile(50), 10.0);
  EXPECT_EQ(two.percentile(50.1), 20.0);
  EXPECT_EQ(two.percentile(100), 20.0);

  // Out-of-range p clamps rather than indexing out of bounds.
  EXPECT_EQ(two.percentile(-5), 10.0);
  EXPECT_EQ(two.percentile(200), 20.0);

  // p99 over 1..200: rank ceil(0.99 * 200) = 198.
  sample_set big;
  for (int i = 1; i <= 200; ++i) big.add(i);
  EXPECT_EQ(big.p99(), 198.0);

  // All-equal samples: every percentile is that value, min == max.
  sample_set flat;
  for (int i = 0; i < 50; ++i) flat.add(7.5);
  EXPECT_EQ(flat.percentile(0), 7.5);
  EXPECT_EQ(flat.median(), 7.5);
  EXPECT_EQ(flat.p99(), 7.5);
  EXPECT_EQ(flat.percentile(100), 7.5);
  EXPECT_EQ(flat.min(), flat.max());
}

TEST(log, parse_log_level_names) {
  EXPECT_EQ(parse_log_level("trace"), log_level::trace);
  EXPECT_EQ(parse_log_level("DEBUG"), log_level::debug);
  EXPECT_EQ(parse_log_level("Info"), log_level::info);
  EXPECT_EQ(parse_log_level("warn"), log_level::warn);
  EXPECT_EQ(parse_log_level("ERROR"), log_level::error);
  EXPECT_EQ(parse_log_level("off"), log_level::off);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("warning"), std::nullopt);  // exact names only
}

TEST(log, set_level_overrides_and_restores) {
  const log_level before = current_log_level();
  set_log_level(log_level::error);
  EXPECT_EQ(current_log_level(), log_level::error);
  set_log_level(before);
  EXPECT_EQ(current_log_level(), before);
}

// Restores logger globals (level, clock, limiter config + buckets) on exit
// so the limiter tests cannot leak state into later tests.
struct limiter_fixture {
  log_level level = current_log_level();
  log_rate_limit_config cfg = current_log_rate_limit();
  ~limiter_fixture() {
    reset_log_rate_limiter();
    set_log_rate_limit(cfg);
    set_log_clock(nullptr);
    set_log_level(level);
  }
};

TEST(log, warn_rate_limiter_suppresses_repeats) {
  limiter_fixture restore;
  set_log_level(log_level::warn);
  std::int64_t fake_ns = 0;
  set_log_clock([&fake_ns] { return fake_ns; });
  log_rate_limit_config cfg;
  cfg.burst = 3.0;
  cfg.refill_interval_ns = 1'000'000'000;
  set_log_rate_limit(cfg);
  reset_log_rate_limiter();

  testing::internal::CaptureStderr();

  // The burst passes, the flood behind it is swallowed.
  for (int i = 0; i < 10; ++i) log_warn("hot path warning");
  EXPECT_EQ(log_emitted_total(), 3u);
  EXPECT_EQ(log_suppressed_total(), 7u);

  // A different message text has its own bucket.
  log_warn("unrelated warning");
  EXPECT_EQ(log_emitted_total(), 4u);
  EXPECT_EQ(log_suppressed_total(), 7u);

  // error is never limited, and does not feed the warn counters.
  log_error("hot path warning");
  EXPECT_EQ(log_suppressed_total(), 7u);

  // One refill interval later a token is back; the first line through is
  // annotated with how many lines were swallowed meanwhile.
  fake_ns += cfg.refill_interval_ns;
  log_warn("hot path warning");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hot path warning"), std::string::npos);
  EXPECT_NE(err.find("[suppressed 7 similar]"), std::string::npos);
  EXPECT_EQ(log_emitted_total(), 5u);

  // The single refilled token is spent: the next repeat is suppressed again.
  log_warn("hot path warning");
  EXPECT_EQ(log_emitted_total(), 5u);
  EXPECT_EQ(log_suppressed_total(), 8u);
}

TEST(log, warn_rate_limiter_disabled_passes_everything) {
  limiter_fixture restore;
  set_log_level(log_level::warn);
  std::int64_t fake_ns = 0;
  set_log_clock([&fake_ns] { return fake_ns; });
  log_rate_limit_config cfg;
  cfg.enabled = false;
  set_log_rate_limit(cfg);
  reset_log_rate_limiter();

  testing::internal::CaptureStderr();
  for (int i = 0; i < 20; ++i) log_warn("repeated warning");
  (void)testing::internal::GetCapturedStderr();
  EXPECT_EQ(log_emitted_total(), 20u);
  EXPECT_EQ(log_suppressed_total(), 0u);
}

TEST(token_bucket, starts_full_and_refills) {
  token_bucket tb{data_rate::mbps(8), 1000};  // 1 MB/s, 1000 B burst
  EXPECT_TRUE(tb.try_consume(sim_time::zero(), 1000));
  EXPECT_FALSE(tb.try_consume(sim_time::zero(), 1));
  // After 1 ms, 1000 bytes accumulated.
  EXPECT_TRUE(tb.try_consume(milliseconds(1), 1000));
}

TEST(token_bucket, next_available_is_consistent) {
  token_bucket tb{data_rate::mbps(8), 1000};
  EXPECT_TRUE(tb.try_consume(sim_time::zero(), 1000));
  const sim_time when = tb.next_available(sim_time::zero(), 500);
  EXPECT_GE(when, microseconds(499));
  EXPECT_TRUE(tb.try_consume(when, 500));
}

TEST(token_bucket, burst_caps_accumulation) {
  token_bucket tb{data_rate::mbps(8), 1000};
  EXPECT_NEAR(tb.tokens_at(seconds(100)), 1000.0, 1e-6);
}

}  // namespace
}  // namespace nk
