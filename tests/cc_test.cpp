// Congestion-controller unit tests: each algorithm's response to synthetic
// ACK/loss streams, plus end-to-end sanity for every algorithm on the
// loopback rig.
#include <gtest/gtest.h>

#include "tcp/cc/bbr.hpp"
#include "tcp/cc/compound.hpp"
#include "tcp/cc/congestion_controller.hpp"
#include "tcp/cc/cubic.hpp"
#include "tcp/cc/dctcp.hpp"
#include "tcp/cc/newreno.hpp"
#include "util/loopback.hpp"

namespace nk::tcp {
namespace {

constexpr cc_config cfg{.mss = 1000, .initial_cwnd_segments = 10};

ack_sample make_ack(sim_time now, std::uint64_t acked, sim_time rtt,
                    std::uint64_t delivered, std::uint64_t round = 1) {
  ack_sample a;
  a.now = now;
  a.acked_bytes = acked;
  a.rtt = rtt;
  a.min_rtt = rtt;
  a.delivered = delivered;
  a.round_trips = round;
  return a;
}

// --- factory -----------------------------------------------------------------------

TEST(cc_factory, parses_names) {
  EXPECT_EQ(parse_cc_algorithm("cubic"), cc_algorithm::cubic);
  EXPECT_EQ(parse_cc_algorithm("bbr"), cc_algorithm::bbr);
  EXPECT_EQ(parse_cc_algorithm("ctcp"), cc_algorithm::compound);
  EXPECT_EQ(parse_cc_algorithm("reno"), cc_algorithm::newreno);
  EXPECT_EQ(parse_cc_algorithm("dctcp"), cc_algorithm::dctcp);
  EXPECT_FALSE(parse_cc_algorithm("vegas").has_value());
}

TEST(cc_factory, constructs_each_algorithm) {
  for (auto algo : {cc_algorithm::newreno, cc_algorithm::cubic,
                    cc_algorithm::bbr, cc_algorithm::compound,
                    cc_algorithm::dctcp}) {
    auto cc = make_congestion_controller(algo, cfg);
    ASSERT_NE(cc, nullptr);
    EXPECT_EQ(cc->name(), to_string(algo));
    EXPECT_GE(cc->cwnd_bytes(), cfg.mss);
  }
}

// --- NewReno -----------------------------------------------------------------------

TEST(newreno_cc, slow_start_doubles_per_rtt) {
  newreno cc{cfg};
  const auto initial = cc.cwnd_bytes();
  // One RTT's worth of ACKs: every acked byte grows cwnd by a byte.
  std::uint64_t delivered = 0;
  for (int i = 0; i < 10; ++i) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(10), delivered));
  }
  EXPECT_EQ(cc.cwnd_bytes(), initial + 10000);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(newreno_cc, congestion_avoidance_adds_one_mss_per_window) {
  newreno cc{cfg};
  cc.on_fast_retransmit({milliseconds(1), 20000});  // forces ssthresh
  const auto cwnd0 = cc.cwnd_bytes();
  EXPECT_FALSE(cc.in_slow_start());
  // Ack exactly one full window: +1 MSS.
  std::uint64_t delivered = 0;
  std::uint64_t target = cwnd0;
  while (delivered < target) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(2), 1000, milliseconds(10), delivered));
  }
  EXPECT_GE(cc.cwnd_bytes(), cwnd0 + 1000);
  EXPECT_LE(cc.cwnd_bytes(), cwnd0 + 2000);
}

TEST(newreno_cc, fast_retransmit_halves) {
  newreno cc{cfg};
  cc.on_fast_retransmit({milliseconds(1), 20000});
  EXPECT_EQ(cc.cwnd_bytes(), 10000u);  // max(in_flight, cwnd/2) * 0.5
}

TEST(newreno_cc, rto_collapses_to_one_mss) {
  newreno cc{cfg};
  cc.on_rto({milliseconds(1), 20000});
  EXPECT_EQ(cc.cwnd_bytes(), 1000u);
  EXPECT_EQ(cc.ssthresh_bytes(), 10000u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(newreno_cc, no_growth_during_recovery) {
  newreno cc{cfg};
  const auto before = cc.cwnd_bytes();
  auto a = make_ack(milliseconds(1), 1000, milliseconds(10), 1000);
  a.in_recovery = true;
  cc.on_ack(a);
  EXPECT_EQ(cc.cwnd_bytes(), before);
}

// --- CUBIC --------------------------------------------------------------------------

TEST(cubic_cc, reduces_by_beta_on_loss) {
  cubic cc{cfg};
  // Grow a bit in slow start first.
  std::uint64_t delivered = 0;
  for (int i = 0; i < 50; ++i) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(10), delivered));
  }
  const auto before = cc.cwnd_bytes();
  cc.on_fast_retransmit({milliseconds(60), before});
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()),
              static_cast<double>(before) * 0.7,
              static_cast<double>(cfg.mss));
}

TEST(cubic_cc, grows_toward_wmax_after_loss) {
  cubic cc{cfg};
  std::uint64_t delivered = 0;
  for (int i = 0; i < 100; ++i) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(10), delivered));
  }
  const auto w_max = cc.cwnd_bytes();
  cc.on_fast_retransmit({milliseconds(100), w_max});
  const auto floor = cc.cwnd_bytes();

  // Feed ACKs over simulated seconds: cubic growth recovers toward w_max.
  for (int t = 0; t < 4000; ++t) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(101 + t), 1000, milliseconds(10),
                       delivered, 2));
  }
  EXPECT_GT(cc.cwnd_bytes(), floor);
  EXPECT_GE(cc.cwnd_bytes(), w_max * 9 / 10);
}

TEST(cubic_cc, rto_resets_to_one_segment) {
  cubic cc{cfg};
  cc.on_rto({milliseconds(1), 10000});
  EXPECT_EQ(cc.cwnd_bytes(), 1000u);
}

// --- BBR ---------------------------------------------------------------------------

TEST(bbr_cc, startup_exits_when_bandwidth_plateaus) {
  bbr cc{cfg};
  cc.on_established(sim_time::zero());
  EXPECT_EQ(cc.state(), bbr::mode::startup);

  // Constant delivery rate over several rounds: full pipe detected.
  std::uint64_t delivered = 0;
  for (std::uint64_t round = 1; round <= 6; ++round) {
    delivered += 10000;
    auto a = make_ack(milliseconds(10 * round), 10000, milliseconds(10),
                      delivered, round);
    a.delivery_rate = 1e6;  // 1 MB/s, flat
    cc.on_ack(a);
  }
  EXPECT_NE(cc.state(), bbr::mode::startup);
}

TEST(bbr_cc, tracks_bottleneck_bandwidth) {
  bbr cc{cfg};
  cc.on_established(sim_time::zero());
  auto a = make_ack(milliseconds(10), 10000, milliseconds(10), 10000, 1);
  a.delivery_rate = 5e6;
  cc.on_ack(a);
  EXPECT_DOUBLE_EQ(cc.bottleneck_bw_bytes_per_sec(), 5e6);
  // App-limited lower samples do not pollute the max filter.
  auto limited = make_ack(milliseconds(20), 10000, milliseconds(10), 20000, 2);
  limited.delivery_rate = 1e6;
  limited.rate_app_limited = true;
  cc.on_ack(limited);
  EXPECT_DOUBLE_EQ(cc.bottleneck_bw_bytes_per_sec(), 5e6);
}

TEST(bbr_cc, cwnd_is_gain_times_bdp) {
  bbr cc{cfg};
  cc.on_established(sim_time::zero());
  // Drive to probe_bw with stable 5 MB/s, 10 ms RTT -> BDP = 50 KB.
  std::uint64_t delivered = 0;
  for (std::uint64_t round = 1; round <= 10; ++round) {
    delivered += 50000;
    auto a = make_ack(milliseconds(10 * round), 50000, milliseconds(10),
                      delivered, round);
    a.delivery_rate = 5e6;
    a.in_flight = 40000;
    cc.on_ack(a);
  }
  EXPECT_EQ(cc.state(), bbr::mode::probe_bw);
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), 2.0 * 50000, 5000);
  EXPECT_GT(cc.pacing_rate().bps(), 0.0);
}

TEST(bbr_cc, ignores_isolated_loss) {
  bbr cc{cfg};
  cc.on_established(sim_time::zero());
  auto a = make_ack(milliseconds(10), 10000, milliseconds(10), 10000, 1);
  a.delivery_rate = 5e6;
  cc.on_ack(a);
  const auto cwnd = cc.cwnd_bytes();
  cc.on_fast_retransmit({milliseconds(11), 10000});
  EXPECT_EQ(cc.cwnd_bytes(), cwnd);  // loss is not a signal for BBR v1
}

TEST(bbr_cc, probe_rtt_after_min_rtt_expiry) {
  bbr cc{cfg};
  cc.on_established(sim_time::zero());
  std::uint64_t delivered = 0;
  bool visited_probe_rtt = false;
  std::uint64_t cwnd_in_probe = 0;
  // Run 15 seconds without a new min-RTT sample at or below the first; the
  // 10 s window must expire and force a probe_rtt visit.
  for (int i = 1; i <= 150; ++i) {
    delivered += 10000;
    auto a = make_ack(milliseconds(100 * i), 10000, milliseconds(20),
                      delivered, static_cast<std::uint64_t>(i));
    a.delivery_rate = 1e6;
    // The first sample sets the min; every later one is strictly higher
    // (queueing built up), so the min-RTT window must eventually expire.
    a.rtt = i == 1 ? milliseconds(20) : milliseconds(25) + milliseconds(i % 3);
    cc.on_ack(a);
    if (cc.state() == bbr::mode::probe_rtt) {
      visited_probe_rtt = true;
      cwnd_in_probe = cc.cwnd_bytes();
    }
  }
  EXPECT_TRUE(visited_probe_rtt);
  // During probe_rtt the window collapses to the 4-segment floor.
  EXPECT_EQ(cwnd_in_probe, 4u * cfg.mss);
  // And it exits again (back to probing for bandwidth).
  EXPECT_NE(cc.state(), bbr::mode::probe_rtt);
}

// --- Compound -----------------------------------------------------------------------

TEST(compound_cc, delay_window_grows_on_uncongested_path) {
  compound cc{cfg};
  // Force congestion avoidance so dwnd logic engages.
  cc.on_fast_retransmit({milliseconds(0), 20000});
  std::uint64_t delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    delivered += 1000;
    // rtt == base rtt: no queueing observed.
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(50), delivered));
  }
  EXPECT_GT(cc.delay_window_segments(), 0.0);
}

TEST(compound_cc, delay_window_retreats_under_queueing) {
  compound cc{cfg};
  cc.on_fast_retransmit({milliseconds(0), 20000});
  std::uint64_t delivered = 0;
  // Establish base RTT.
  for (int i = 0; i < 500; ++i) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(50), delivered));
  }
  const double grown = cc.delay_window_segments();
  // Now RTT inflates 4x: queueing detected, dwnd must fall.
  for (int i = 500; i < 1500; ++i) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(200), delivered));
  }
  EXPECT_LT(cc.delay_window_segments(), grown);
}

TEST(compound_cc, loss_reduces_total_window) {
  compound cc{cfg};
  std::uint64_t delivered = 0;
  for (int i = 0; i < 100; ++i) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(50), delivered));
  }
  const auto before = cc.cwnd_bytes();
  cc.on_fast_retransmit({milliseconds(100), before});
  EXPECT_LT(cc.cwnd_bytes(), before);
  EXPECT_GE(cc.cwnd_bytes(), 2 * cfg.mss);
}

// --- DCTCP -------------------------------------------------------------------------

TEST(dctcp_cc, wants_ecn) {
  dctcp cc{cfg};
  EXPECT_TRUE(cc.wants_ecn());
  newreno plain{cfg};
  EXPECT_FALSE(plain.wants_ecn());
}

TEST(dctcp_cc, alpha_tracks_marking_fraction) {
  dctcp cc{cfg};
  // Pin the window to congestion-avoidance scale so alpha updates (once per
  // cwnd of delivered data) happen often, as they would on a real path.
  cc.on_fast_retransmit({sim_time::zero(), 20000});
  std::uint64_t delivered = 0;
  // No marks for many windows: alpha decays from 1 toward 0.
  for (int i = 0; i < 2000; ++i) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(1), delivered));
  }
  EXPECT_LT(cc.alpha(), 0.1);

  // Now every ACK carries ECE: alpha climbs toward 1.
  for (int i = 0; i < 4000; ++i) {
    delivered += 1000;
    auto a = make_ack(milliseconds(2000 + i), 1000, milliseconds(1), delivered);
    a.ece = true;
    cc.on_ack(a);
  }
  EXPECT_GT(cc.alpha(), 0.5);
}

TEST(dctcp_cc, proportional_decrease_is_gentler_than_halving) {
  dctcp cc{cfg};
  cc.on_fast_retransmit({sim_time::zero(), 20000});  // bounded window
  std::uint64_t delivered = 0;
  // Decay alpha with a clean period first.
  for (int i = 0; i < 3000; ++i) {
    delivered += 1000;
    cc.on_ack(make_ack(milliseconds(i), 1000, milliseconds(1), delivered));
  }
  const double alpha = cc.alpha();
  const auto before = cc.cwnd_bytes();
  // One window with sparse marks.
  for (int i = 0; i < 64; ++i) {
    auto a = make_ack(milliseconds(3000 + i), 1000, milliseconds(1),
                      delivered += 1000);
    a.ece = (i % 16 == 0);
    cc.on_ack(a);
  }
  // With tiny alpha the reduction is far less than half.
  EXPECT_GT(cc.cwnd_bytes(), before / 2);
  EXPECT_LT(alpha, 0.2);
}

// --- end-to-end sanity: every controller moves data with integrity -----------------------

class cc_e2e : public ::testing::TestWithParam<cc_algorithm> {};

TEST_P(cc_e2e, lossy_transfer_completes_with_integrity) {
  auto params = test::lan_params(2024);
  params.forward_loss = 0.01;
  tcp::tcp_config t = params.tcp_a;
  t.cc = GetParam();
  params.tcp_a = t;
  test::loopback net{params};

  stack::socket_id listener = net.b.tcp_listen(5001).value();
  stack::socket_id server_conn = 0;
  buffer_chain received;
  net.b.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.type == stack::socket_event_type::accept_ready) {
      server_conn = net.b.accept(listener).value();
    } else if (ev.type == stack::socket_event_type::readable &&
               ev.sock == server_conn) {
      while (auto r = net.b.recv(server_conn, 1 << 20)) {
        received.append(std::move(r).value());
      }
    }
  });

  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  constexpr std::uint64_t total = 256 * 1024;
  std::uint64_t queued = 0;
  auto push = [&] {
    while (queued < total) {
      auto r = net.a.send(conn, buffer::pattern(
                                    std::min<std::uint64_t>(
                                        32 * 1024, total - queued),
                                    queued));
      if (!r) break;
      queued += r.value();
    }
  };
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && (ev.type == stack::socket_event_type::connected ||
                            ev.type == stack::socket_event_type::writable)) {
      push();
    }
  });

  net.run_for(seconds(60));
  ASSERT_EQ(received.size(), total) << to_string(GetParam());
  EXPECT_TRUE(received.pop(total).matches_pattern(0));
}

INSTANTIATE_TEST_SUITE_P(
    all_algorithms, cc_e2e,
    ::testing::Values(cc_algorithm::newreno, cc_algorithm::cubic,
                      cc_algorithm::bbr, cc_algorithm::compound,
                      cc_algorithm::dctcp),
    [](const ::testing::TestParamInfo<cc_algorithm>& info) {
      return std::string{to_string(info.param)};
    });

}  // namespace
}  // namespace nk::tcp
