// Observability layer tests (ISSUE 1): metrics registry semantics,
// histogram bucket math, exporter formats, nqe lifecycle tracing through a
// full NetKernel testbed, and sampling determinism under a fixed seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <set>
#include <string>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"
#include "core/monitor.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/cpu_core.hpp"

namespace nk::obs {
namespace {

using apps::side;
using apps::testbed;

// --- registry -----------------------------------------------------------------

TEST(metrics_registry, registration_and_lookup) {
  metrics_registry reg;
  counter& c = reg.get_counter("ops");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name -> same instrument; the reference stays stable across later
  // registrations (std::map nodes never move).
  EXPECT_EQ(&reg.get_counter("ops"), &c);
  for (int i = 0; i < 100; ++i) {
    (void)reg.get_counter("filler" + std::to_string(i));
  }
  EXPECT_EQ(&reg.get_counter("ops"), &c);
  EXPECT_EQ(reg.get_counter("ops").value(), 5u);

  gauge& g = reg.get_gauge("depth");
  g.set(3.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(reg.get_gauge("depth").value(), 4.0);

  reg.register_gauge_fn("answer", [] { return 42.0; });

  EXPECT_NE(reg.find_counter("ops"), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_NE(reg.find_gauge("depth"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);

  EXPECT_EQ(reg.value_of("ops"), 5.0);
  EXPECT_EQ(reg.value_of("depth"), 4.0);
  EXPECT_EQ(reg.value_of("answer"), 42.0);
  EXPECT_FALSE(reg.value_of("missing").has_value());
}

TEST(metrics_registry, prom_and_json_exports) {
  metrics_registry reg;
  reg.get_counter("requests_total").inc(7);
  reg.get_gauge("queue_depth").set(2);
  histogram& h = reg.get_histogram("latency_ns");
  h.record(5);
  h.record(100);

  const std::string prom = reg.to_prom();
  EXPECT_NE(prom.find("# TYPE nk_requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("nk_requests_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nk_queue_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nk_latency_ns histogram"), std::string::npos);
  EXPECT_NE(prom.find("nk_latency_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("nk_latency_ns_sum 105"), std::string::npos);
  EXPECT_NE(prom.find("nk_latency_ns_count 2"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"requests_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST(metrics_registry, json_escape_handles_specials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape(std::string_view{"\n", 1}), "\\u000a");
}

// --- histogram ----------------------------------------------------------------

TEST(histogram, bucket_boundaries) {
  // Values 0..15 are exact.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(histogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(histogram::bucket_lower(static_cast<int>(v)), v);
  }
  // First log-linear octave: width-1 buckets for 16..31.
  EXPECT_EQ(histogram::bucket_index(16), 16);
  EXPECT_EQ(histogram::bucket_index(31), 31);
  EXPECT_EQ(histogram::bucket_index(32), 32);  // next octave starts
  EXPECT_EQ(histogram::bucket_index(33), 32);  // ...with width-2 buckets
  EXPECT_EQ(histogram::bucket_index(34), 33);

  // bucket_lower inverts bucket_index, and every value lands inside its
  // bucket's [lower, upper] range with <= 1/16 relative width.
  for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 31ull, 32ull,
                          100ull, 1000ull, 12345ull, 1ull << 20,
                          (1ull << 32) + 12345ull}) {
    const int idx = histogram::bucket_index(v);
    EXPECT_GE(v, histogram::bucket_lower(idx)) << v;
    EXPECT_LE(v, histogram::bucket_upper(idx)) << v;
    if (idx >= histogram::sub_buckets) {
      const auto lower = histogram::bucket_lower(idx);
      const auto width = histogram::bucket_upper(idx) - lower + 1;
      EXPECT_LE(width * histogram::sub_buckets, lower + width) << v;
    }
  }

  // Monotone across the whole range.
  int prev = -1;
  for (std::uint64_t v = 0; v < (1 << 12); ++v) {
    const int idx = histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }

  // Overflow clamps into the final bucket instead of running off the array.
  EXPECT_EQ(histogram::bucket_index(~0ull), histogram::bucket_count - 1);
}

TEST(histogram, records_and_percentiles) {
  histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);

  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Log-linear buckets: percentiles are within 6.25% of exact.
  EXPECT_NEAR(h.p50(), 500.0, 500.0 / 16.0 + 1);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 / 16.0 + 1);
  EXPECT_NEAR(h.percentile(100), 1000.0, 0.0);  // clamped to recorded max

  histogram single;
  single.record_time(nanoseconds(77));
  EXPECT_DOUBLE_EQ(single.percentile(0), 77.0);
  EXPECT_DOUBLE_EQ(single.percentile(50), 77.0);
  EXPECT_DOUBLE_EQ(single.percentile(100), 77.0);

  histogram neg;
  neg.record_time(nanoseconds(-5));  // clamps, never underflows
  EXPECT_EQ(neg.count(), 1u);
  EXPECT_EQ(neg.max(), 0u);
}

// --- tracing through the full NetKernel path -----------------------------------

// Quickstart-shaped workload: one echo exchange between a client VM on side
// A and a server VM on side B, both NetKernel-attached.
std::size_t run_echo(testbed& bed, std::size_t bytes = 64 * 1024) {
  core::nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client-vm";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server-vm";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  core::guest_lib& srv = *server.glib;
  const std::uint32_t listener = srv.nk_socket().value();
  EXPECT_TRUE(srv.nk_bind(listener, 7777).ok());
  EXPECT_TRUE(srv.nk_listen(listener).ok());
  std::uint32_t conn = 0;
  srv.set_event_handler([&](std::uint32_t fd, stack::socket_event_type type,
                            errc) {
    if (fd == listener && type == stack::socket_event_type::accept_ready) {
      conn = srv.nk_accept(listener).value();
    } else if (fd == conn && type == stack::socket_event_type::readable) {
      while (auto data = srv.nk_recv(conn, 1 << 20)) {
        (void)srv.nk_send(conn, std::move(data).value());
      }
    }
  });

  core::guest_lib& cli = *client.glib;
  const std::uint32_t sock = cli.nk_socket().value();
  std::size_t echoed = 0;
  cli.set_event_handler([&](std::uint32_t fd, stack::socket_event_type type,
                            errc) {
    if (fd != sock) return;
    if (type == stack::socket_event_type::connected) {
      (void)cli.nk_send(sock, buffer::pattern(bytes, 0));
    } else if (type == stack::socket_event_type::readable) {
      while (auto data = cli.nk_recv(sock, 1 << 20)) {
        echoed += data.value().size();
      }
    }
  });
  EXPECT_TRUE(
      cli.nk_connect(sock, {server.module->config().address, 7777}).ok());
  bed.run_for(milliseconds(50));
  return echoed;
}

#ifndef NK_NO_TRACING  // these tests need the hooks compiled in

TEST(nqe_tracing, full_pipeline_stages_recorded) {
  auto params = apps::datacenter_params(42);
  params.netkernel.trace.enabled = true;
  params.netkernel.trace.sample_rate = 1.0;
  testbed bed{params};
  ASSERT_EQ(run_echo(bed), 64u * 1024u);

  core::core_engine& ce = bed.netkernel(side::a);
  const nqe_tracer& tracer = ce.tracer();
  EXPECT_GT(tracer.completed().size(), 0u);
  EXPECT_GT(ce.metrics().value_of("nqe_traces_sampled").value_or(0.0), 0.0);

  // Every data-path pipeline stage saw traffic on the client side: requests
  // walk the forward stages, completions/events the reverse ones. The
  // failover_replay stage only carries traffic during an NSM replacement.
  int stages_with_data = 0;
  for (int s = 0; s < nqe_stage_count; ++s) {
    if (static_cast<nqe_stage>(s) == nqe_stage::failover_replay) continue;
    const std::string name =
        "nqe_stage_" +
        std::string(to_string(static_cast<nqe_stage>(s))) + "_ns";
    const histogram* h = ce.metrics().find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    if (h->count() > 0) ++stages_with_data;
  }
  EXPECT_EQ(stages_with_data, nqe_stage_count - 1);

  // The acceptance bar: the prom dump carries per-stage nqe latency
  // histograms for at least 5 pipeline stages.
  const std::string prom = ce.metrics().to_prom();
  int stages_in_prom = 0;
  for (int s = 0; s < nqe_stage_count; ++s) {
    const std::string name =
        "nk_nqe_stage_" +
        std::string(to_string(static_cast<nqe_stage>(s))) + "_ns_count";
    if (prom.find(name) != std::string::npos) ++stages_in_prom;
  }
  EXPECT_GE(stages_in_prom, 5);

  // End-to-end latency histograms exist per VM and per NSM.
  EXPECT_NE(prom.find("nqe_total_vm"), std::string::npos);
  EXPECT_NE(prom.find("nqe_total_nsm"), std::string::npos);
}

TEST(nqe_tracing, engine_copy_latency_matches_cost_model) {
  auto params = apps::datacenter_params(42);
  params.netkernel.trace.enabled = true;
  params.netkernel.trace.sample_rate = 1.0;
  testbed bed{params};
  ASSERT_EQ(run_echo(bed), 64u * 1024u);

  // The engine_copy_fwd stage spans CoreEngine pop -> NSM-queue push: at
  // minimum one nqe_copy charge (12 ns, paper §4.2), more when copies queue
  // behind each other on the CE core.
  const auto& costs = apps::datacenter_params(42).netkernel.costs;
  const histogram* h =
      bed.netkernel(side::a).metrics().find_histogram(
          "nqe_stage_engine_copy_fwd_ns");
  ASSERT_NE(h, nullptr);
  ASSERT_GT(h->count(), 0u);
  EXPECT_GE(h->min(), static_cast<std::uint64_t>(costs.nqe_copy.count()));
  // An idle engine core executes at least one copy at the base cost.
  EXPECT_EQ(h->min(), static_cast<std::uint64_t>(costs.nqe_copy.count()));
}

TEST(nqe_tracing, chrome_trace_export_is_well_formed) {
  auto params = apps::datacenter_params(7);
  params.netkernel.trace.enabled = true;
  testbed bed{params};
  ASSERT_EQ(run_echo(bed), 64u * 1024u);

  const std::string json =
      bed.netkernel(side::a).tracer().to_chrome_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  long braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(nqe_tracing, sampling_is_deterministic_under_fixed_seed) {
  auto make = [] {
    auto params = apps::datacenter_params(1234);
    params.netkernel.trace.enabled = true;
    params.netkernel.trace.sample_rate = 0.4;
    return params;
  };
  testbed bed1{make()};
  ASSERT_EQ(run_echo(bed1), 64u * 1024u);
  testbed bed2{make()};
  ASSERT_EQ(run_echo(bed2), 64u * 1024u);

  const nqe_tracer& t1 = bed1.netkernel(side::a).tracer();
  const nqe_tracer& t2 = bed2.netkernel(side::a).tracer();
  EXPECT_GT(t1.completed().size(), 0u);
  EXPECT_EQ(t1.completed().size(), t2.completed().size());
  // Identical seeds give byte-identical trace dumps — ids, ops, and every
  // timestamp — because sampling draws from the simulator-owned rng.
  EXPECT_EQ(t1.to_chrome_json(), t2.to_chrome_json());

  // And a different seed draws a different sample.
  auto other = make();
  other.seed = 4321;
  testbed bed3{other};
  ASSERT_EQ(run_echo(bed3), 64u * 1024u);
  EXPECT_NE(t1.to_chrome_json(),
            bed3.netkernel(side::a).tracer().to_chrome_json());
}

#endif  // NK_NO_TRACING

TEST(nqe_tracing, disabled_tracer_stays_silent) {
  testbed bed{apps::datacenter_params(9)};  // trace.enabled defaults false
  ASSERT_EQ(run_echo(bed), 64u * 1024u);
  const core::core_engine& ce = bed.netkernel(side::a);
  EXPECT_EQ(ce.tracer().completed().size(), 0u);
  EXPECT_EQ(ce.tracer().active_count(), 0u);
  EXPECT_EQ(ce.metrics().value_of("nqe_traces_sampled").value_or(-1.0), 0.0);
}

// --- health monitor on top of the registry -------------------------------------

TEST(health_monitor_json, report_json_reads_registry) {
  testbed bed{apps::datacenter_params(11)};
  core::monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  core::health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();
  ASSERT_EQ(run_echo(bed), 64u * 1024u);

  const std::string json = mon.report_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"nsms\":["), std::string::npos);
  EXPECT_NE(json.find("\"tx_packets\":"), std::string::npos);
  EXPECT_NE(json.find("\"alerts\":["), std::string::npos);
  // The plain report and the JSON read the same gauges.
  EXPECT_NE(mon.report().find("util="), std::string::npos);
}

// --- prom export hardening (ISSUE 5) -------------------------------------------

TEST(metrics_registry, prom_help_lines_are_escaped) {
  metrics_registry reg;
  reg.get_counter("ops_total").inc(3);
  reg.set_help("ops_total", "back\\slash\nand newline");
  EXPECT_EQ(reg.help_of("ops_total"), "back\\slash\nand newline");
  EXPECT_EQ(reg.help_of("missing"), "");

  const std::string prom = reg.to_prom();
  // Exposition format: backslash -> \\, newline -> \n, HELP before TYPE.
  EXPECT_NE(prom.find("# HELP nk_ops_total back\\\\slash\\nand newline\n"),
            std::string::npos);
  EXPECT_LT(prom.find("# HELP nk_ops_total"),
            prom.find("# TYPE nk_ops_total"));
  // The raw (unescaped) help text must not survive anywhere in the dump:
  // a literal newline inside a comment would corrupt the next line.
  EXPECT_EQ(prom.find("back\\slash\nand"), std::string::npos);
}

TEST(metrics_registry, prom_duplicate_names_are_deduped) {
  metrics_registry reg;
  // One name across all three instrument namespaces...
  reg.get_counter("shared").inc(1);
  reg.get_gauge("shared").set(2);
  reg.get_histogram("shared").record(3);
  // ...and two registry names that sanitize to the same exposition name.
  reg.get_counter("a.b").inc(1);
  reg.get_counter("a/b").inc(2);

  const std::string prom = reg.to_prom();
  const auto occurrences = [&prom](std::string_view needle) {
    std::size_t n = 0;
    for (std::size_t pos = 0;
         (pos = prom.find(needle, pos)) != std::string::npos;
         pos += needle.size()) {
      ++n;
    }
    return n;
  };
  // Counters export first, so the counter keeps the bare name; later
  // namespaces pick up _dup suffixes.
  EXPECT_EQ(occurrences("# TYPE nk_shared counter\n"), 1u);
  EXPECT_EQ(occurrences("# TYPE nk_shared_dup gauge\n"), 1u);
  EXPECT_EQ(occurrences("# TYPE nk_shared_dup_dup histogram\n"), 1u);
  EXPECT_EQ(occurrences("# TYPE nk_a_b counter\n"), 1u);
  EXPECT_EQ(occurrences("# TYPE nk_a_b_dup counter\n"), 1u);

  // Globally: no exposition name is TYPE-declared twice.
  std::set<std::string> declared;
  for (std::size_t pos = 0;
       (pos = prom.find("# TYPE ", pos)) != std::string::npos;) {
    pos += 7;
    const std::size_t sp = prom.find(' ', pos);
    ASSERT_NE(sp, std::string::npos);
    EXPECT_TRUE(declared.insert(prom.substr(pos, sp - pos)).second)
        << "duplicate TYPE for " << prom.substr(pos, sp - pos);
  }
}

TEST(metrics_registry, prom_histograms_export_percentile_gauges) {
  metrics_registry reg;
  histogram& h = reg.get_histogram("lat_ns");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);

  const std::string prom = reg.to_prom();
  EXPECT_NE(prom.find("# TYPE nk_lat_ns_p50 gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nk_lat_ns_p99 gauge"), std::string::npos);
  // The gauge values are the histogram's own quantiles.
  const std::string p50 =
      "nk_lat_ns_p50 " +
      std::to_string(static_cast<long long>(h.p50())) + "\n";
  const std::string p99 =
      "nk_lat_ns_p99 " +
      std::to_string(static_cast<long long>(h.p99())) + "\n";
  EXPECT_NE(prom.find(p50), std::string::npos) << prom;
  EXPECT_NE(prom.find(p99), std::string::npos) << prom;
}

TEST(metrics_registry, unregister_prefix_drops_live_histograms) {
  metrics_registry reg;
  reg.get_histogram("vm1_latency_ns").record(10);
  reg.get_histogram("vm1_queue_ns").record(5);
  reg.get_counter("vm1_ops").inc();
  reg.register_gauge_fn("vm1_depth", [] { return 1.0; });
  reg.set_help("vm1_latency_ns", "per-vm latency");
  histogram& keep = reg.get_histogram("vm2_latency_ns");
  keep.record(77);

  // Four instruments removed; the help string rides along uncounted.
  EXPECT_EQ(reg.unregister_prefix("vm1"), 4u);
  EXPECT_EQ(reg.find_histogram("vm1_latency_ns"), nullptr);
  EXPECT_EQ(reg.find_histogram("vm1_queue_ns"), nullptr);
  EXPECT_EQ(reg.find_counter("vm1_ops"), nullptr);
  EXPECT_FALSE(reg.value_of("vm1_depth").has_value());
  EXPECT_EQ(reg.help_of("vm1_latency_ns"), "");
  EXPECT_EQ(reg.unregister_prefix("vm1"), 0u);

  // The survivor's reference stays valid with its data intact (map nodes
  // never move), and the removed family is gone from the export.
  EXPECT_EQ(&reg.get_histogram("vm2_latency_ns"), &keep);
  EXPECT_EQ(keep.count(), 1u);
  EXPECT_EQ(keep.max(), 77u);
  EXPECT_EQ(reg.to_prom().find("nk_vm1_"), std::string::npos);
}

// --- flight recorder (unit level) ----------------------------------------------

TEST(flight_recorder, ring_is_bounded_and_keeps_latest) {
  flight_recorder_config cfg;
  cfg.capacity = 8;
  flight_recorder rec{cfg};
  for (int i = 0; i < 20; ++i) {
    rec.note(3, 0, "ev" + std::to_string(i), nanoseconds(i));
  }
  EXPECT_EQ(rec.total(3), 20u);
  const auto evs = rec.events(3);
  ASSERT_EQ(evs.size(), 8u);
  // Oldest first, holding exactly the last `capacity` events.
  EXPECT_STREQ(evs.front().note.data(), "ev12");
  EXPECT_STREQ(evs.back().note.data(), "ev19");
  EXPECT_TRUE(rec.events(99).empty());

  const std::string snap = rec.snapshot_json(3, nanoseconds(100));
  EXPECT_NE(snap.find("\"events_total\":20"), std::string::npos);
  EXPECT_NE(snap.find("ev19"), std::string::npos);
  EXPECT_EQ(snap.find("ev11"), std::string::npos);  // overwritten
}

// --- provider-wide flow table (ISSUE 5 tentpole) -------------------------------

// Two bulk flows over a lossy datacenter link: the provider-side flow table
// must agree with the connection-mapping table and show *live* stack state
// (srtt measured, cwnd set, bytes advancing, retransmits visible).
TEST(flow_table, lossy_link_stats_are_live) {
  auto params = apps::datacenter_params(21);
  params.wire.loss_rate = 0.002;
  testbed bed{params};

  core::nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.cc = tcp::cc_algorithm::cubic;
  virt::vm_config vm_cfg;
  vm_cfg.name = "sender-vm";
  nsm_cfg.name = "nsm-a";
  auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "sink-vm";
  nsm_cfg.name = "nsm-b";
  auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*rx.api, 7300, /*validate=*/false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 2;
  scfg.bytes_per_flow = 0;
  scfg.patterned = false;
  apps::bulk_sender sender{*tx.api, {rx.module->config().address, 7300},
                           scfg};
  sender.start();
  bed.run_for(milliseconds(200));

  core::core_engine& ce = bed.netkernel(side::a);
  const auto first = ce.flow_table();
  ASSERT_EQ(first.size(), 2u);
  for (const auto& row : first) {
    // Every surfaced row joins back through the connection-mapping table.
    const auto mapped = ce.mapping_of(row.vm, row.fd);
    ASSERT_TRUE(mapped.has_value());
    EXPECT_EQ(mapped->first, row.nsm);
    EXPECT_EQ(mapped->second, row.cid);
    EXPECT_EQ(row.info.state, "established");
    EXPECT_GT(row.info.srtt_ns, 0u);
    EXPECT_GT(row.info.cwnd_bytes, 0u);
  }

  bed.run_for(milliseconds(150));
  const auto second = ce.flow_table();
  ASSERT_EQ(second.size(), 2u);
  std::uint64_t retransmits = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GT(second[i].info.bytes_out, first[i].info.bytes_out);
    retransmits += second[i].info.retransmits;
  }
  // 0.2% loss over 350 ms of bulk traffic cannot avoid retransmitting.
  EXPECT_GT(retransmits, 0u);

  // The monitor report embeds the table and the per-VM/per-NSM rollups.
  core::health_monitor mon{ce, core::monitor_config{}};
  const std::string report = mon.report_json();
  EXPECT_NE(report.find("\"flows\":["), std::string::npos);
  EXPECT_NE(report.find("\"flow_aggregates\""), std::string::npos);
  EXPECT_NE(report.find("\"by_vm\""), std::string::npos);
  EXPECT_NE(report.find("\"by_nsm\""), std::string::npos);
  EXPECT_NE(report.find("\"srtt_ns\""), std::string::npos);
}

#ifndef NK_NO_TRACING

// --- stage-pair attribution (ISSUE 5 tentpole) ---------------------------------

TEST(nqe_tracing, stage_pair_attribution_in_both_exports) {
  auto params = apps::datacenter_params(42);
  params.netkernel.trace.enabled = true;
  params.netkernel.trace.sample_rate = 1.0;
  testbed bed{params};
  ASSERT_EQ(run_echo(bed), 64u * 1024u);

  core::core_engine& ce = bed.netkernel(side::a);
  const std::string prom = ce.metrics().to_prom();
  const std::string json = ce.metrics().to_json();
  // Completed traces fed per-hop histograms in both directions, and both
  // exporters carry them.
  EXPECT_NE(prom.find("nk_nqe_attr_fwd_"), std::string::npos);
  EXPECT_NE(prom.find("nk_nqe_attr_rev_"), std::string::npos);
  EXPECT_NE(json.find("\"nqe_attr_fwd_"), std::string::npos);
  EXPECT_NE(json.find("\"nqe_attr_rev_"), std::string::npos);

  // The critical-path summary names a dominant hop per direction.
  const std::string cp = ce.tracer().critical_path_json();
  EXPECT_EQ(cp.front(), '{');
  EXPECT_EQ(cp.back(), '}');
  EXPECT_NE(cp.find("\"fwd\""), std::string::npos);
  EXPECT_NE(cp.find("\"rev\""), std::string::npos);
  EXPECT_NE(cp.find("\"hops\":["), std::string::npos);
  EXPECT_NE(cp.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(cp.find("\"critical\":\""), std::string::npos);
  EXPECT_EQ(cp.find("\"critical\":\"none\""), std::string::npos);

  // Attribution must not disturb the tracer's accounting invariant.
  const auto& m = ce.metrics();
  const double unaccounted =
      m.value_of("engine_unroutable_nqes").value_or(0.0) +
      m.value_of("engine_nqes_dropped").value_or(0.0) +
      m.value_of("engine_stale_nqes").value_or(0.0) -
      m.value_of("nqe_traces_dropped").value_or(0.0);
  EXPECT_EQ(unaccounted, 0.0);
}

// --- flight recorder through the monitor (ISSUE 5 tentpole) --------------------

// Killing an NSM mid-stream must leave its last trace events and the crash
// note in the monitor's crash snapshot — captured before the supervisor
// replaces the module.
TEST(flight_recorder, monitor_snapshots_victim_on_kill) {
  auto params = apps::datacenter_params(5);
  params.netkernel.trace.enabled = true;
  params.netkernel.trace.sample_rate = 1.0;
  testbed bed{params};

  core::nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.cc = tcp::cc_algorithm::cubic;
  nsm_cfg.form = core::nsm_form::hypervisor_module;  // ~1 ms replacement
  virt::vm_config vm_cfg;
  vm_cfg.name = "sender-vm";
  nsm_cfg.name = "nsm-a";
  auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "sink-vm";
  nsm_cfg.name = "nsm-b";
  auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*rx.api, 7400, /*validate=*/false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 2;
  scfg.bytes_per_flow = 0;
  scfg.patterned = false;
  apps::bulk_sender sender{*tx.api, {rx.module->config().address, 7400},
                           scfg};
  sender.start();

  core::core_engine& rx_ce = bed.netkernel(side::b);
  core::monitor_config mcfg;
  mcfg.interval = milliseconds(1);
  mcfg.failure_deadline = milliseconds(20);
  core::health_monitor mon{rx_ce, mcfg};
  core::nsm_supervisor sup{rx_ce, mon};
  mon.start();
  bed.run_for(milliseconds(50));

  const core::nsm_id victim = rx.module->id();
  EXPECT_TRUE(mon.crash_snapshots().empty());
  rx_ce.service_of(victim)->fail();
  bed.run_for(milliseconds(30));

  const auto& snaps = mon.crash_snapshots();
  ASSERT_EQ(snaps.count(victim), 1u);
  const std::string& snap = snaps.at(victim);
  EXPECT_NE(snap.find("\"kind\":\"trace_"), std::string::npos);  // last traces
  EXPECT_NE(snap.find("crash"), std::string::npos);  // ServiceLib's note
  // The ring never exceeds its configured capacity.
  EXPECT_LE(rx_ce.recorder().events(victim).size(),
            rx_ce.recorder().capacity());
  EXPECT_EQ(sup.failovers(), 1);
}

#endif  // NK_NO_TRACING

// --- registry edge cases (PR 6) -----------------------------------------------

TEST(metrics_registry, percentile_gauges_refresh_from_empty) {
  metrics_registry reg;
  histogram& h = reg.get_histogram("cold_ns");

  // Empty histogram: the percentile gauges still export (value 0), and a
  // timeseries percentile source samples NaN — never a stale number.
  EXPECT_NE(reg.to_prom().find("nk_cold_ns_p99 0"), std::string::npos);

  sim::simulator s{1};
  timeseries ts{s, reg};
  const std::string p99 = ts.track_percentile("cold_ns", 99.0);
  ts.snap_now();
  EXPECT_TRUE(std::isnan(ts.latest(p99)));

  // First record: both the prom gauge and the series row refresh.
  h.record(500);
  s.run_until(s.now() + milliseconds(1));
  ts.snap_now();
  EXPECT_EQ(ts.latest(p99), h.p99());
  EXPECT_EQ(reg.to_prom().find("nk_cold_ns_p99 0\n"), std::string::npos);
}

TEST(metrics_registry, dup_guard_covers_histogram_subseries) {
  metrics_registry reg;
  // Two histogram names that sanitize to the same exposition name: every
  // derived series (buckets, sum, count, percentile gauges) must carry the
  // _dup suffix too, or the output declares one name twice.
  reg.get_histogram("rtt.ns").record(10);
  reg.get_histogram("rtt/ns").record(20);

  const std::string prom = reg.to_prom();
  EXPECT_NE(prom.find("# TYPE nk_rtt_ns histogram"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nk_rtt_ns_dup histogram"), std::string::npos);
  EXPECT_NE(prom.find("nk_rtt_ns_dup_sum 20"), std::string::npos);
  EXPECT_NE(prom.find("nk_rtt_ns_dup_count 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nk_rtt_ns_dup_p99 gauge"), std::string::npos);

  std::set<std::string> declared;
  for (std::size_t pos = 0;
       (pos = prom.find("# TYPE ", pos)) != std::string::npos;) {
    pos += 7;
    const std::size_t sp = prom.find(' ', pos);
    ASSERT_NE(sp, std::string::npos);
    EXPECT_TRUE(declared.insert(prom.substr(pos, sp - pos)).second)
        << "duplicate TYPE for " << prom.substr(pos, sp - pos);
  }
}

TEST(timeseries, unregister_prefix_turns_series_to_null) {
  sim::simulator s{1};
  metrics_registry reg;
  timeseries ts{s, reg};
  reg.get_counter("vm1_ops").inc(3);
  ts.track("vm1_ops");
  ts.snap_now();
  EXPECT_EQ(ts.latest("vm1_ops"), 3.0);

  // The metric family is torn down mid-run (VM detach). Later rows sample
  // NaN; the export shows null, never the last pre-teardown value.
  reg.unregister_prefix("vm1");
  s.run_until(s.now() + milliseconds(1));
  ts.snap_now();
  EXPECT_TRUE(std::isnan(ts.latest("vm1_ops")));
  const std::string json = ts.to_json();
  EXPECT_NE(json.find("\"vm1_ops\":[3,null]"), std::string::npos) << json;
  // Windowed reducers skip the NaN rows instead of poisoning the result.
  EXPECT_EQ(ts.delta("vm1_ops", milliseconds(10)), 0.0);
}

// --- timeseries ring ----------------------------------------------------------

TEST(timeseries, ring_wraps_and_windows_reduce) {
  sim::simulator s{1};
  metrics_registry reg;
  counter& ops = reg.get_counter("ops");
  timeseries_config cfg;
  cfg.resolution = milliseconds(1);
  cfg.retention = 4;
  timeseries ts{s, reg, cfg};
  ts.track("ops");
  ts.start();

  // +10 ops per sampled millisecond, for 8 ms: the 4-row ring wraps.
  for (int i = 0; i < 8; ++i) {
    s.run_until(s.now() + milliseconds(1));
    ops.inc(10);
  }
  EXPECT_EQ(ts.samples(), 4u);
  // Rows hold the value at tick time: t=5..8 ms sampled 40,50,60,70.
  EXPECT_EQ(ts.latest("ops"), 70.0);
  EXPECT_EQ(ts.delta("ops", milliseconds(10)), 30.0);
  EXPECT_DOUBLE_EQ(ts.rate_per_sec("ops", milliseconds(10)), 10'000.0);
  // Half the retained rows exceed 55.
  EXPECT_DOUBLE_EQ(
      ts.violation_fraction("ops", milliseconds(10), 55.0, /*above=*/true),
      0.5);
  ts.stop();
}

TEST(timeseries, snap_now_overwrites_same_timestamp) {
  sim::simulator s{1};
  metrics_registry reg;
  counter& ops = reg.get_counter("ops");
  timeseries ts{s, reg};
  ts.track("ops");

  ops.inc(1);
  ts.snap_now();
  ops.inc(1);
  ts.snap_now();  // same sim time: the row is replaced, not duplicated
  EXPECT_EQ(ts.samples(), 1u);
  EXPECT_EQ(ts.latest("ops"), 2.0);
}

// --- SLO burn-rate engine -----------------------------------------------------

TEST(slo_engine, multi_window_burn_is_edge_triggered) {
  sim::simulator s{1};
  metrics_registry reg;
  gauge& lat = reg.get_gauge("lat_ns");
  timeseries_config cfg;
  cfg.resolution = milliseconds(1);
  timeseries ts{s, reg, cfg};
  ts.track("lat_ns");

  slo_engine slo{ts};
  slo_objective o;
  o.name = "lat";
  o.metric = "lat_ns";
  o.threshold = 10.0;
  o.budget = 0.01;
  o.short_window = milliseconds(2);
  o.long_window = milliseconds(5);
  o.burn_threshold = 10.0;
  slo.add(o);
  std::size_t fired = 0;
  slo.add_alert_handler([&fired](const slo_status& st) {
    EXPECT_EQ(st.objective.name, "lat");
    EXPECT_TRUE(st.burning);
    ++fired;
  });
  ts.start();

  // Sustained violation: one alert at the start of the episode, not one
  // per tick.
  lat.set(100.0);
  s.run_until(s.now() + milliseconds(6));
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(slo.alerts_total(), 1u);
  EXPECT_TRUE(slo.statuses()[0].burning);

  // Recovery: once every violating row ages out of the long window the
  // episode ends...
  lat.set(1.0);
  s.run_until(s.now() + milliseconds(8));
  EXPECT_FALSE(slo.statuses()[0].burning);
  EXPECT_EQ(fired, 1u);

  // ...and the next violation is a new episode with its own alert.
  lat.set(100.0);
  s.run_until(s.now() + milliseconds(6));
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(slo.alerts_total(), 2u);
  EXPECT_NE(slo.to_json().find("\"alerts\":2"), std::string::npos);
  ts.stop();
}

// --- continuous profiler ------------------------------------------------------

#ifndef NK_NO_PROFILING

TEST(profiler_sim, charges_attribute_to_scope_and_core) {
  sim::simulator s{1};
  profiler prof{&s};
  sim::cpu_core core{s, "core0"};
  {
    prof_scope scope{"tcp", "input"};
    core.execute(microseconds(10), [] {});
  }
  core.execute(microseconds(5), [] {});  // no scope: explicit bucket
  s.run();

  EXPECT_EQ(prof.charged_ns(), 15'000u);
  EXPECT_EQ(prof.attributed_ns(), 10'000u);
  EXPECT_NEAR(prof.attribution_ratio(), 10.0 / 15.0, 1e-12);

  const auto top = prof.top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].stack, "core0;tcp:input");
  EXPECT_EQ(top[0].ns, 10'000u);
  EXPECT_EQ(top[0].count, 1u);
  EXPECT_EQ(top[1].stack, "core0;(unattributed)");
  EXPECT_EQ(top[1].ns, 5'000u);

  const auto cores = prof.cores();
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].core, "core0");
  EXPECT_EQ(cores[0].busy_ns, 15'000u);
  EXPECT_EQ(cores[0].attributed_ns, 10'000u);

  EXPECT_NE(prof.collapsed().find("core0;tcp:input 10000"),
            std::string::npos);
  EXPECT_NE(prof.to_json().find("\"attribution\""), std::string::npos);
}

TEST(profiler_sim, nested_scopes_fold_into_stacks) {
  sim::simulator s{1};
  profiler prof{&s};
  sim::cpu_core core{s, "c"};
  {
    prof_scope pump{"servicelib", "pump"};
    core.execute(microseconds(1), [] {});
    {
      prof_scope out{"tcp", "output"};
      core.execute(microseconds(2), [] {});
    }
    core.execute(microseconds(3), [] {});
  }
  s.run();

  // Both pump charges fold into one leaf; the nested charge gets its own
  // two-deep stack.
  const auto top = prof.top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].stack, "c;servicelib:pump");
  EXPECT_EQ(top[0].ns, 4'000u);
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_EQ(top[1].stack, "c;servicelib:pump;tcp:output");
  EXPECT_EQ(top[1].ns, 2'000u);
  EXPECT_DOUBLE_EQ(prof.attribution_ratio(), 1.0);
}

TEST(profiler_wall, scopes_measure_exclusive_self_time) {
  profiler prof{nullptr};
  EXPECT_TRUE(prof.wall_mode());
  volatile std::uint64_t sink = 0;
  {
    prof_scope outer{"bench", "outer"};
    for (int i = 0; i < 100'000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    {
      prof_scope inner{"bench", "inner"};
      for (int i = 0; i < 100'000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  EXPECT_GT(prof.charged_ns(), 0u);
  EXPECT_EQ(prof.charged_ns(), prof.attributed_ns());

  const auto top = prof.top(10);
  ASSERT_EQ(top.size(), 2u);
  std::uint64_t sum = 0;
  bool saw_outer = false;
  bool saw_inner = false;
  for (const auto& n : top) {
    sum += n.ns;
    saw_outer = saw_outer || n.stack == "wall;bench:outer";
    saw_inner = saw_inner || n.stack == "wall;bench:outer;bench:inner";
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  // Child time subtracted from the parent: the leaves partition the total.
  EXPECT_EQ(sum, prof.charged_ns());
}

TEST(profiler_sim, restores_previous_listener_on_destruction) {
  sim::simulator s{1};
  profiler outer{&s};
  {
    profiler inner{&s};
    EXPECT_EQ(profiler::current(), &inner);
    EXPECT_EQ(sim::current_cpu_charge_listener(), &inner);
  }
  EXPECT_EQ(profiler::current(), &outer);
  EXPECT_EQ(sim::current_cpu_charge_listener(), &outer);
}

#endif  // NK_NO_PROFILING

}  // namespace
}  // namespace nk::obs
