// Unit tests for addressing, packet model and wire codecs.
#include <gtest/gtest.h>

#include <cstring>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "net/wire.hpp"

namespace nk::net {
namespace {

TEST(address, parse_valid) {
  auto a = ipv4_addr::parse("10.0.1.200");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.0.1.200");
  EXPECT_EQ(a->value, (ipv4_addr::from_octets(10, 0, 1, 200).value));
}

TEST(address, parse_rejects_malformed) {
  EXPECT_FALSE(ipv4_addr::parse("").has_value());
  EXPECT_FALSE(ipv4_addr::parse("1.2.3").has_value());
  EXPECT_FALSE(ipv4_addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(ipv4_addr::parse("256.0.0.1").has_value());
  EXPECT_FALSE(ipv4_addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(ipv4_addr::parse("1..2.3").has_value());
}

TEST(address, ordering_and_hash) {
  const auto a = ipv4_addr::from_octets(10, 0, 0, 1);
  const auto b = ipv4_addr::from_octets(10, 0, 0, 2);
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<ipv4_addr>{}(a), std::hash<ipv4_addr>{}(b));
}

TEST(four_tuple, receiver_view_swaps_endpoints) {
  packet p;
  p.ip.src = ipv4_addr::from_octets(1, 1, 1, 1);
  p.ip.dst = ipv4_addr::from_octets(2, 2, 2, 2);
  p.tcp().src_port = 1000;
  p.tcp().dst_port = 80;
  const four_tuple t = p.tuple_at_receiver();
  EXPECT_EQ(t.local.port, 80);
  EXPECT_EQ(t.remote.port, 1000);
  EXPECT_EQ(t.local.ip, p.ip.dst);
}

TEST(packet, wire_size_accounts_headers) {
  packet p;
  p.payload = buffer::zeroed(1000);
  // 18 (eth) + 20 (ip) + 32 (tcp+ts) + payload.
  EXPECT_EQ(p.wire_size(), 18u + 20 + 32 + 1000);
  packet u;
  u.l4 = udp_header{};
  EXPECT_EQ(u.wire_size(), 18u + 20 + 8);
}

TEST(checksum, rfc1071_known_vector) {
  // Classic example: the checksum of a buffer with its checksum inserted
  // verifies to zero.
  const std::uint8_t raw[] = {0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40,
                              0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
                              0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c};
  auto* bytes = reinterpret_cast<const std::byte*>(raw);
  const std::uint16_t sum = internet_checksum({bytes, sizeof raw});
  // Insert and re-verify.
  std::uint8_t patched[sizeof raw];
  std::memcpy(patched, raw, sizeof raw);
  patched[10] = static_cast<std::uint8_t>(sum >> 8);
  patched[11] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_EQ(internet_checksum(
                {reinterpret_cast<const std::byte*>(patched), sizeof raw}),
            0);
}

packet sample_tcp_packet() {
  packet p;
  p.ip.src = ipv4_addr::from_octets(10, 0, 1, 10);
  p.ip.dst = ipv4_addr::from_octets(10, 0, 2, 10);
  p.ip.ecn = ecn_codepoint::ect0;
  p.ip.ttl = 61;
  p.ip.id = 0xbeef;
  tcp_header h;
  h.src_port = 49152;
  h.dst_port = 5001;
  h.seq = 0x12345678;
  h.ack = 0x9abcdef0;
  h.flags.ack = true;
  h.flags.psh = true;
  h.wnd = 262144;  // multiple of 128 so window scaling is lossless
  h.ts_val = 777;
  h.ts_ecr = 555;
  p.l4 = h;
  p.payload = buffer::pattern(300, 42);
  return p;
}

TEST(wire, tcp_roundtrip) {
  const packet p = sample_tcp_packet();
  const auto bytes = serialize(p);
  auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.ok());
  const packet& q = parsed.value();
  EXPECT_EQ(q.ip.src, p.ip.src);
  EXPECT_EQ(q.ip.dst, p.ip.dst);
  EXPECT_EQ(q.ip.ecn, ecn_codepoint::ect0);
  EXPECT_EQ(q.ip.ttl, 61);
  EXPECT_EQ(q.tcp().seq, p.tcp().seq);
  EXPECT_EQ(q.tcp().ack, p.tcp().ack);
  EXPECT_EQ(q.tcp().flags, p.tcp().flags);
  EXPECT_EQ(q.tcp().wnd, p.tcp().wnd);
  EXPECT_EQ(q.tcp().ts_val, 777u);
  EXPECT_EQ(q.tcp().ts_ecr, 555u);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(wire, udp_roundtrip) {
  packet p;
  p.ip.src = ipv4_addr::from_octets(1, 2, 3, 4);
  p.ip.dst = ipv4_addr::from_octets(5, 6, 7, 8);
  p.ip.proto = ip_proto::udp;
  udp_header h;
  h.src_port = 9999;
  h.dst_port = 53;
  p.l4 = h;
  p.payload = buffer::pattern(100, 7);
  const auto bytes = serialize(p);
  auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().udp().dst_port, 53);
  EXPECT_EQ(parsed.value().payload, p.payload);
}

TEST(wire, detects_ip_header_corruption) {
  auto bytes = serialize(sample_tcp_packet());
  bytes[14] ^= std::byte{0xff};  // flip a src-address byte
  EXPECT_FALSE(parse(bytes).ok());
}

TEST(wire, detects_payload_corruption) {
  auto bytes = serialize(sample_tcp_packet());
  bytes[bytes.size() - 1] ^= std::byte{0x01};
  EXPECT_FALSE(parse(bytes).ok());
}

TEST(wire, detects_flag_corruption) {
  auto bytes = serialize(sample_tcp_packet());
  bytes[20 + 13] ^= std::byte{0x02};  // flip SYN inside the TCP header
  EXPECT_FALSE(parse(bytes).ok());
}

TEST(wire, rejects_truncated_input) {
  const auto bytes = serialize(sample_tcp_packet());
  EXPECT_FALSE(parse(std::span{bytes}.first(10)).ok());
  EXPECT_FALSE(parse({}).ok());
}

TEST(wire, all_tcp_flags_roundtrip) {
  packet p = sample_tcp_packet();
  p.tcp().flags = tcp_flags{.syn = true, .ack = true, .fin = true,
                            .rst = false, .psh = true, .ece = true,
                            .cwr = true};
  p.payload = {};
  auto parsed = parse(serialize(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().tcp().flags, p.tcp().flags);
}

TEST(wire, window_scaling_quantizes) {
  packet p = sample_tcp_packet();
  p.tcp().wnd = 1000;  // not a multiple of 128: scaled wire value truncates
  auto parsed = parse(serialize(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().tcp().wnd, (1000u >> 7) << 7);
}

TEST(packet, summary_is_informative) {
  const packet p = sample_tcp_packet();
  const std::string s = p.summary();
  EXPECT_NE(s.find("10.0.1.10"), std::string::npos);
  EXPECT_NE(s.find("5001"), std::string::npos);
  EXPECT_NE(s.find("len=300"), std::string::npos);
}

}  // namespace
}  // namespace nk::net
