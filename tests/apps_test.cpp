// apps-layer tests: the unified socket_api must behave identically over the
// legacy in-guest stack and over NetKernel (parameterized conformance
// suite), and the workload generators must report sane numbers.
#include <gtest/gtest.h>

#include "apps/flowgen.hpp"
#include "apps/scenario.hpp"
#include "apps/workloads.hpp"

namespace nk::apps {
namespace {

enum class impl { native, netkernel };

// One testbed with a client/server api pair on the chosen architecture.
struct rig {
  rig(impl which, std::uint64_t seed) : bed{datacenter_params(seed)} {
    if (which == impl::netkernel) {
      core::nsm_config nsm_cfg;
      nsm_cfg.tcp = datacenter_tcp(tcp::cc_algorithm::cubic);
      virt::vm_config vm_cfg;
      vm_cfg.name = "client-vm";
      auto c = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
      vm_cfg.name = "server-vm";
      nsm_cfg.name = "nsm-b";
      auto s = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
      server_addr = s.module->config().address;
      client = std::move(c.api);
      server = std::move(s.api);
    } else {
      virt::vm_config cfg;
      cfg.guest_stack.tcp = datacenter_tcp(tcp::cc_algorithm::cubic);
      cfg.name = "client-vm";
      auto c = bed.add_legacy_vm(side::a, cfg);
      cfg.name = "server-vm";
      auto s = bed.add_legacy_vm(side::b, cfg);
      server_addr = s.vm->address();
      client = std::move(c.api);
      server = std::move(s.api);
    }
  }

  testbed bed;
  std::unique_ptr<socket_api> client;
  std::unique_ptr<socket_api> server;
  net::ipv4_addr server_addr;
};

class api_conformance : public ::testing::TestWithParam<impl> {};

TEST_P(api_conformance, connect_send_recv_close) {
  rig r{GetParam(), 61};
  auto& srv = *r.server;
  auto& cli = *r.client;

  const app_socket listener = srv.open().value();
  ASSERT_TRUE(srv.bind(listener, 6000).ok());
  ASSERT_TRUE(srv.listen(listener).ok());

  app_socket server_conn = 0;
  buffer_chain received;
  bool saw_eof = false;
  srv.on_event(listener, [&](app_socket, app_event t, errc) {
    if (t == app_event::accept_ready) {
      server_conn = srv.accept(listener).value();
      srv.on_event(server_conn, [&](app_socket s, app_event t2, errc) {
        if (t2 != app_event::readable) return;
        while (true) {
          auto data = srv.recv(s, 1 << 20);
          if (!data) {
            saw_eof = data.error() == errc::closed;
            break;
          }
          received.append(std::move(data).value());
        }
      });
    }
  });

  const app_socket sock = cli.open().value();
  cli.on_event(sock, [&](app_socket s, app_event t, errc) {
    if (t == app_event::connected) {
      (void)cli.send(s, buffer::pattern(30000, 0));
    }
  });
  ASSERT_TRUE(cli.connect(sock, {r.server_addr, 6000}).ok());
  r.bed.run_for(milliseconds(50));
  ASSERT_TRUE(cli.close(sock).ok());
  r.bed.run_for(milliseconds(100));

  EXPECT_EQ(received.size(), 30000u);
  EXPECT_TRUE(received.pop(30000).matches_pattern(0));
  EXPECT_TRUE(saw_eof);
}

TEST_P(api_conformance, recv_before_data_would_block) {
  rig r{GetParam(), 62};
  const app_socket listener = r.server->open().value();
  ASSERT_TRUE(r.server->bind(listener, 6000).ok());
  ASSERT_TRUE(r.server->listen(listener).ok());
  const app_socket sock = r.client->open().value();
  ASSERT_TRUE(r.client->connect(sock, {r.server_addr, 6000}).ok());
  r.bed.run_for(milliseconds(20));
  EXPECT_EQ(r.client->recv(sock, 100).error(), errc::would_block);
}

TEST_P(api_conformance, accept_empty_would_block) {
  rig r{GetParam(), 63};
  const app_socket listener = r.server->open().value();
  ASSERT_TRUE(r.server->bind(listener, 6000).ok());
  ASSERT_TRUE(r.server->listen(listener).ok());
  r.bed.run_for(milliseconds(5));
  EXPECT_EQ(r.server->accept(listener).error(), errc::would_block);
}

TEST_P(api_conformance, per_socket_cc_override_applies) {
  rig r{GetParam(), 64};
  const app_socket listener = r.server->open().value();
  ASSERT_TRUE(r.server->bind(listener, 6000).ok());
  ASSERT_TRUE(r.server->listen(listener).ok());
  const app_socket sock = r.client->open().value();
  ASSERT_TRUE(
      r.client->set_congestion_control(sock, tcp::cc_algorithm::bbr).ok());
  ASSERT_TRUE(r.client->connect(sock, {r.server_addr, 6000}).ok());
  r.bed.run_for(milliseconds(20));
  // Connection works with the overridden stack (data flows, no errors).
  ASSERT_TRUE(r.client->send(sock, buffer::pattern(1000, 0)).ok());
  r.bed.run_for(milliseconds(20));
  EXPECT_FALSE(r.client->eof(sock));
}

INSTANTIATE_TEST_SUITE_P(both_architectures, api_conformance,
                         ::testing::Values(impl::native, impl::netkernel),
                         [](const ::testing::TestParamInfo<impl>& info) {
                           return info.param == impl::native ? "native"
                                                             : "netkernel";
                         });

// --- workload generators ---------------------------------------------------------

TEST(workloads, bulk_sender_finishes_fixed_volume) {
  rig r{impl::native, 71};
  bulk_sink sink{*r.server, 5001, true};
  sink.start();
  bulk_sender_config cfg;
  cfg.flows = 3;
  cfg.bytes_per_flow = 300000;
  bulk_sender sender{*r.client, {r.server_addr, 5001}, cfg};
  sender.start();
  r.bed.run_for(milliseconds(300));
  EXPECT_EQ(sender.flows_done(), 3);
  EXPECT_EQ(sender.bytes_sent(), 900000u);
  EXPECT_EQ(sink.total_bytes(), 900000u);
  EXPECT_TRUE(sink.pattern_ok());
  EXPECT_EQ(sink.flows_finished(), 3u);
}

TEST(workloads, rpc_client_counts_and_latencies_consistent) {
  rig r{impl::native, 72};
  echo_server echo{*r.server, 5002};
  echo.start();
  rpc_client_config cfg;
  cfg.request_size = 256;
  cfg.requests = 50;
  cfg.think_time = microseconds(100);
  rpc_client rpc{*r.client, r.bed.sim(), {r.server_addr, 5002}, cfg};
  rpc.start();
  r.bed.run_for(milliseconds(500));
  EXPECT_TRUE(rpc.finished());
  EXPECT_EQ(rpc.completed(), 50);
  EXPECT_EQ(rpc.latencies_us().size(), 50u);
  EXPECT_GT(rpc.latencies_us().min(), 0.0);
  EXPECT_GE(rpc.latencies_us().max(), rpc.latencies_us().median());
  EXPECT_EQ(echo.bytes_echoed(), 50u * 256);
}

TEST(workloads, incast_round_completes_and_counts) {
  rig r{impl::native, 74};
  incast_config cfg;
  cfg.fanout = 8;
  cfg.response_size = 16 * 1024;
  cfg.queries = 5;
  incast_worker_service workers{*r.server, 7000, cfg.response_size};
  workers.start();
  incast_aggregator agg{*r.client, r.bed.sim(), {r.server_addr, 7000}, cfg};
  agg.start();
  r.bed.run_for(seconds(1));
  EXPECT_TRUE(agg.finished());
  EXPECT_EQ(agg.completed(), 5);
  EXPECT_EQ(agg.query_us().size(), 5u);
  EXPECT_EQ(workers.queries_served(), 5 * 8);
  EXPECT_GT(agg.query_us().min(), 0.0);
}

TEST(workloads, incast_fct_grows_with_fanout) {
  auto median_for = [](int fanout) {
    rig r{impl::native, 75};
    incast_config cfg;
    cfg.fanout = fanout;
    cfg.response_size = 32 * 1024;
    cfg.queries = 5;
    incast_worker_service workers{*r.server, 7000, cfg.response_size};
    workers.start();
    incast_aggregator agg{*r.client, r.bed.sim(), {r.server_addr, 7000},
                          cfg};
    agg.start();
    r.bed.run_for(seconds(2));
    EXPECT_TRUE(agg.finished());
    return agg.query_us().median();
  };
  // More colliding responses take longer to drain through the bottleneck.
  EXPECT_LT(median_for(4), median_for(16));
}

TEST(workloads, churn_completes_every_connection) {
  rig r{impl::native, 73};
  echo_server echo{*r.server, 5003};
  echo.start();
  churn_config cfg;
  cfg.connections = 25;
  cfg.message_size = 64;
  churn_client churn{*r.client, r.bed.sim(), {r.server_addr, 5003}, cfg};
  churn.start();
  r.bed.run_for(seconds(2));
  EXPECT_TRUE(churn.finished());
  EXPECT_EQ(churn.completion_us().size(), 25u);
}

// --- flow generator ----------------------------------------------------------------

TEST(flowgen, size_samplers_match_published_shape) {
  rng random{99};
  int ws_mice = 0;
  int dm_mice = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (classify(sample_flow_size(flow_mix::websearch, random)) ==
        size_class::mice) {
      ++ws_mice;
    }
    if (classify(sample_flow_size(flow_mix::datamining, random)) ==
        size_class::mice) {
      ++dm_mice;
    }
  }
  // Web-search: roughly half the flows are mice; data-mining: the vast
  // majority are.
  EXPECT_NEAR(static_cast<double>(ws_mice) / n, 0.5, 0.1);
  EXPECT_GT(static_cast<double>(dm_mice) / n, 0.85);
}

TEST(flowgen, classify_boundaries) {
  EXPECT_EQ(classify(1), size_class::mice);
  EXPECT_EQ(classify(100 * 1024 - 1), size_class::mice);
  EXPECT_EQ(classify(100 * 1024), size_class::medium);
  EXPECT_EQ(classify(10 * 1024 * 1024), size_class::elephants);
}

TEST(flowgen, flows_complete_and_fcts_recorded) {
  rig r{impl::native, 81};
  flow_sink sink{*r.server, 7100};
  sink.sim = &r.bed.sim();
  sink.start();

  flowgen_config cfg;
  cfg.mix = flow_mix::uniform;
  cfg.flows = 40;
  cfg.arrivals_per_sec = 5000;
  cfg.seed = 4;
  flow_generator gen{*r.client, r.bed.sim(), {r.server_addr, 7100}, cfg};
  gen.start();

  r.bed.run_for(seconds(2));
  EXPECT_EQ(gen.launched(), 40);
  EXPECT_EQ(gen.finished_sending(), 40);
  EXPECT_EQ(sink.completed(), 40);
  EXPECT_EQ(sink.total_bytes(), gen.bytes_offered());
  // Uniform mix (<= 64 KB) lands entirely in the mice class.
  EXPECT_EQ(sink.fct_us(size_class::mice).size(), 40u);
  EXPECT_GT(sink.fct_us(size_class::mice).min(), 0.0);
}

TEST(flowgen, poisson_arrivals_spread_over_time) {
  rig r{impl::native, 82};
  flow_sink sink{*r.server, 7100};
  sink.sim = &r.bed.sim();
  sink.start();

  flowgen_config cfg;
  cfg.mix = flow_mix::uniform;
  cfg.flows = 20;
  cfg.arrivals_per_sec = 100;  // mean gap 10 ms
  flow_generator gen{*r.client, r.bed.sim(), {r.server_addr, 7100}, cfg};
  gen.start();

  r.bed.run_for(milliseconds(50));
  const int early = gen.launched();
  r.bed.run_for(milliseconds(400));
  // Arrivals are spread out, not front-loaded.
  EXPECT_LT(early, 20);
  EXPECT_GT(gen.launched(), early);
}

}  // namespace
}  // namespace nk::apps
