// Centralized bandwidth arbitration tests (§5's Fastpass-as-NSM point).
#include <gtest/gtest.h>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"
#include "core/arbiter.hpp"

namespace nk::core {
namespace {

using apps::side;
using apps::testbed;

struct arbiter_rig {
  explicit arbiter_rig(int tenants) : bed{apps::datacenter_params(91)} {
    nsm_config nsm_cfg;
    nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
    virt::vm_config vm_cfg;
    for (int i = 0; i < tenants; ++i) {
      vm_cfg.name = "tenant-" + std::to_string(i);
      nsm_cfg.name = "nsm-" + std::to_string(i);
      vms.push_back(bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg));
    }
    vm_cfg.name = "server";
    nsm_cfg.name = "nsm-server";
    nsm_cfg.cores = 3;
    server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
    sink = std::make_unique<apps::bulk_sink>(*server.api, 5001, false);
    sink->start();
  }

  void launch_bulk(std::size_t tenant) {
    apps::bulk_sender_config scfg;
    scfg.flows = 1;
    scfg.bytes_per_flow = 0;
    scfg.patterned = false;
    senders.push_back(std::make_unique<apps::bulk_sender>(
        *vms[tenant].api,
        net::socket_addr{server.module->config().address, 5001}, scfg));
    senders.back()->start();
  }

  [[nodiscard]] double tenant_rate_gbps(std::size_t tenant, sim_time window,
                                        std::uint64_t bytes_before) {
    const auto& usage =
        bed.netkernel(side::a).sla().usage_of(vms[tenant].vm->id());
    return rate_of(usage.bytes_sent - bytes_before, window).bps() / 1e9;
  }

  [[nodiscard]] std::uint64_t tenant_bytes(std::size_t tenant) {
    return bed.netkernel(side::a)
        .sla()
        .usage_of(vms[tenant].vm->id())
        .bytes_sent;
  }

  testbed bed;
  std::vector<apps::nk_tenant> vms;
  apps::nk_tenant server;
  std::unique_ptr<apps::bulk_sink> sink;
  std::vector<std::unique_ptr<apps::bulk_sender>> senders;
};

TEST(arbiter, splits_capacity_equally_between_active_tenants) {
  arbiter_rig rig{2};
  arbiter_config acfg;
  acfg.link_capacity = data_rate::gbps(10);
  acfg.epoch = milliseconds(2);
  bandwidth_arbiter arb{rig.bed.netkernel(side::a), acfg};
  arb.start();

  rig.launch_bulk(0);
  rig.launch_bulk(1);
  rig.bed.run_for(milliseconds(100));  // converge
  const std::uint64_t b0 = rig.tenant_bytes(0);
  const std::uint64_t b1 = rig.tenant_bytes(1);
  rig.bed.run_for(milliseconds(200));

  const double r0 = rig.tenant_rate_gbps(0, milliseconds(200), b0);
  const double r1 = rig.tenant_rate_gbps(1, milliseconds(200), b1);
  // Each near half of the 9.5 Gb/s budget.
  EXPECT_NEAR(r0, 4.75, 1.0);
  EXPECT_NEAR(r1, 4.75, 1.0);
  EXPECT_EQ(arb.active_tenants(), 2);
  EXPECT_GT(arb.epochs(), 50u);
}

TEST(arbiter, reallocates_when_a_tenant_goes_idle) {
  arbiter_rig rig{2};
  arbiter_config acfg;
  acfg.link_capacity = data_rate::gbps(10);
  acfg.epoch = milliseconds(2);
  bandwidth_arbiter arb{rig.bed.netkernel(side::a), acfg};
  arb.start();

  // Only tenant 0 is active: it should get (nearly) the whole budget.
  rig.launch_bulk(0);
  rig.bed.run_for(milliseconds(100));
  const std::uint64_t b0 = rig.tenant_bytes(0);
  rig.bed.run_for(milliseconds(200));
  const double solo = rig.tenant_rate_gbps(0, milliseconds(200), b0);
  EXPECT_NEAR(solo, 9.5, 1.2);
  EXPECT_EQ(arb.active_tenants(), 1);

  // Second tenant wakes up: both converge toward half.
  rig.launch_bulk(1);
  rig.bed.run_for(milliseconds(150));
  const std::uint64_t c0 = rig.tenant_bytes(0);
  const std::uint64_t c1 = rig.tenant_bytes(1);
  rig.bed.run_for(milliseconds(200));
  const double r0 = rig.tenant_rate_gbps(0, milliseconds(200), c0);
  const double r1 = rig.tenant_rate_gbps(1, milliseconds(200), c1);
  EXPECT_NEAR(r0, 4.75, 1.2);
  EXPECT_NEAR(r1, 4.75, 1.2);
}

TEST(arbiter, stop_freezes_allocations) {
  arbiter_rig rig{1};
  bandwidth_arbiter arb{rig.bed.netkernel(side::a)};
  arb.start();
  rig.bed.run_for(milliseconds(20));
  const auto epochs = arb.epochs();
  EXPECT_GT(epochs, 0u);
  arb.stop();
  rig.bed.run_for(milliseconds(50));
  EXPECT_EQ(arb.epochs(), epochs);
}

}  // namespace
}  // namespace nk::core
