// Tenant quotas at the ServiceLib boundary (DESIGN.md §15): cycle budgets
// and chunk-pool caps are pure backpressure — observable through stats,
// quota_log, monitor alerts, and vmN gauges — and never lose work.
#include <gtest/gtest.h>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"
#include "core/monitor.hpp"

namespace {

using namespace nk;
using apps::side;

struct quota_bed {
  apps::testbed bed;
  apps::nk_tenant tx;
  apps::nk_tenant rx;

  explicit quota_bed(core::tenant_quota_config quota, std::uint64_t seed = 5)
      : bed{[&] {
          auto params = apps::datacenter_params(seed);
          params.netkernel.quota = quota;
          return params;
        }()} {
    const auto cc = tcp::cc_algorithm::cubic;
    core::nsm_config nsm_cfg;
    nsm_cfg.cc = cc;
    nsm_cfg.tcp = apps::datacenter_tcp(cc);
    virt::vm_config vm_cfg;
    vm_cfg.name = "tx-vm";
    nsm_cfg.name = "nsm-tx";
    tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
    vm_cfg.name = "rx-vm";
    nsm_cfg.name = "nsm-rx";
    rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  }
};

// Bulk writes burn far past a small cycle budget: the ServiceLib must
// throttle (rising-edge quota_log entries, cycle_throttles), the monitor
// must alert with a flight-recorder snapshot, the gauges must be live —
// and every byte must still arrive (backpressure, not loss).
TEST(tenant_quota, cycle_hog_is_throttled_alerted_and_lossless) {
  core::tenant_quota_config quota;
  quota.enabled = true;
  quota.cycle_budget = microseconds(10);
  quota.period = milliseconds(1);
  quota_bed q{quota};

  core::core_engine& ce = q.bed.netkernel(side::a);
  core::monitor_config mcfg;
  mcfg.interval = milliseconds(1);
  core::health_monitor mon{ce, mcfg};
  mon.start();

  apps::bulk_sink sink{*q.rx.api, 5001, /*validate=*/true};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 1;
  scfg.bytes_per_flow = 1 << 20;
  apps::bulk_sender sender{*q.tx.api,
                           {q.rx.module->config().address, 5001}, scfg};
  sender.start();

  for (int i = 0; i < 4000 && sink.flows_finished() < 1; ++i) {
    q.bed.run_for(milliseconds(1));
  }
  q.bed.run_for(milliseconds(20));

  // Backpressure, never loss: the full megabyte landed intact, just late.
  EXPECT_EQ(sink.flows_finished(), 1u);
  EXPECT_EQ(sink.total_bytes(), std::uint64_t{1} << 20);
  EXPECT_TRUE(sink.pattern_ok());

  auto* svc = ce.service_of(q.tx.module->id());
  ASSERT_NE(svc, nullptr);
  EXPECT_GT(svc->stats().cycle_throttles, 0u);
  ASSERT_FALSE(svc->quota_log().empty());
  const virt::vm_id vm = q.tx.vm->id();
  for (const auto& ev : svc->quota_log()) {
    EXPECT_EQ(ev.vm, vm);
    EXPECT_TRUE(ev.cycles);
    EXPECT_GE(ev.observed, ev.limit);
  }

  bool alerted = false;
  for (const auto& a : mon.alerts()) {
    if (a.kind == core::alert_kind::tenant_quota_exceeded && a.vm == vm) {
      alerted = true;
      EXPECT_EQ(a.module, q.tx.module->id());
      EXPECT_NE(a.detail.find("cycle budget"), std::string::npos);
    }
  }
  EXPECT_TRUE(alerted);
  ASSERT_TRUE(mon.quota_snapshots().count(vm));
  EXPECT_FALSE(mon.quota_snapshots().at(vm).empty());

  // Gauges registered per VM (live values depend on when the period last
  // rolled; existence and non-negativity are the contract).
  const auto cycles =
      ce.metrics().value_of("vm" + std::to_string(vm) + "_cycle_budget_used");
  const auto chunks =
      ce.metrics().value_of("vm" + std::to_string(vm) + "_chunk_quota_used");
  ASSERT_TRUE(cycles.has_value());
  ASSERT_TRUE(chunks.has_value());
  EXPECT_GE(*cycles, 0.0);
  EXPECT_GE(*chunks, 0.0);
}

// A tiny chunk quota stalls reads while the guest sits on undrained data;
// the transfer still completes once the guest frees chunks.
TEST(tenant_quota, chunk_cap_backpressures_reads_without_loss) {
  core::tenant_quota_config quota;
  quota.enabled = true;
  quota.cycle_budget = milliseconds(1);  // effectively uncapped
  quota.period = milliseconds(1);
  quota.chunk_quota = 4;
  quota_bed q{quota};

  apps::bulk_sink sink{*q.rx.api, 5001, /*validate=*/true};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 1;
  scfg.bytes_per_flow = 512 << 10;
  apps::bulk_sender sender{*q.tx.api,
                           {q.rx.module->config().address, 5001}, scfg};
  sender.start();

  for (int i = 0; i < 4000 && sink.flows_finished() < 1; ++i) {
    q.bed.run_for(milliseconds(1));
  }
  q.bed.run_for(milliseconds(20));

  EXPECT_EQ(sink.flows_finished(), 1u);
  EXPECT_EQ(sink.total_bytes(), std::uint64_t{512} << 10);
  EXPECT_TRUE(sink.pattern_ok());

  // The receive side (side b) is where chunks pile up against the cap.
  auto* svc = q.bed.netkernel(side::b).service_of(q.rx.module->id());
  ASSERT_NE(svc, nullptr);
  EXPECT_GT(svc->stats().chunk_quota_stalls, 0u);
  bool saw_chunk_event = false;
  for (const auto& ev : svc->quota_log()) {
    if (!ev.cycles) {
      saw_chunk_event = true;
      EXPECT_EQ(ev.limit, 4u);
    }
  }
  EXPECT_TRUE(saw_chunk_event);
}

// Quotas off (the default): nothing throttles, the log stays empty, and
// the gauges still exist reading zero / raw occupancy.
TEST(tenant_quota, disabled_quota_never_throttles) {
  core::tenant_quota_config quota;  // enabled = false
  quota_bed q{quota};

  apps::bulk_sink sink{*q.rx.api, 5001, false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 1;
  scfg.bytes_per_flow = 256 << 10;
  apps::bulk_sender sender{*q.tx.api,
                           {q.rx.module->config().address, 5001}, scfg};
  sender.start();
  for (int i = 0; i < 2000 && sink.flows_finished() < 1; ++i) {
    q.bed.run_for(milliseconds(1));
  }

  auto* svc = q.bed.netkernel(side::a).service_of(q.tx.module->id());
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->stats().cycle_throttles, 0u);
  EXPECT_EQ(svc->stats().quota_stalls, 0u);
  EXPECT_EQ(svc->stats().chunk_quota_stalls, 0u);
  EXPECT_TRUE(svc->quota_log().empty());
}

// Throttling must not bend the accounting identity or leak chunks: audit
// both engines at quiescence after a throttled run.
TEST(tenant_quota, invariants_hold_under_throttling) {
  core::tenant_quota_config quota;
  quota.enabled = true;
  quota.cycle_budget = microseconds(10);
  quota.period = milliseconds(1);
  quota_bed q{quota};

  apps::bulk_sink sink{*q.rx.api, 5001, false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 2;
  scfg.bytes_per_flow = 256 << 10;
  apps::bulk_sender sender{*q.tx.api,
                           {q.rx.module->config().address, 5001}, scfg};
  sender.start();
  for (int i = 0; i < 4000 && sink.flows_finished() < 2; ++i) {
    q.bed.run_for(milliseconds(1));
  }
  q.bed.run_for(milliseconds(50));
  EXPECT_EQ(sink.flows_finished(), 2u);

  for (auto* engine : {&q.bed.netkernel(side::a), &q.bed.netkernel(side::b)}) {
    for (const auto vm : engine->attached_vms()) {
      auto* ch = engine->channel_of(vm);
      EXPECT_EQ(ch->pool.chunk_count(), ch->pool.chunks_free())
          << "chunk leak on vm " << vm;
    }
    for (std::size_t s = 0; s < engine->shards(); ++s) {
      const auto& st = engine->shard_stats(s);
      EXPECT_EQ(st.unroutable_nqes + st.nqes_dropped + st.stale_nqes +
                    st.rejected_nqes,
                engine->shard_traces_dropped(s) +
                    engine->shard_discards_untraced(s))
          << "shard " << s;
    }
  }
}

}  // namespace
