// nkq — the UDP-based reliable transport with QUIC-like streams
// (DESIGN.md §15): wire codec hardening, loss recovery under chaos lossy
// pulses, and 0-RTT token resumption.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"
#include "nkq/transport.hpp"
#include "nkq/wire.hpp"
#include "sim/chaos.hpp"

namespace {

using namespace nk;
using apps::side;

std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

nkq::wire_packet sample_packet() {
  nkq::wire_packet p;
  p.type = nkq::packet_type::initial;
  p.conn_id = 0xdeadbeefcafef00dull;
  p.pn = 41;
  p.token = 0x1234567890abcdefull;

  nkq::frame stream;
  stream.type = nkq::frame_type::stream;
  stream.stream.offset = 8192;
  stream.stream.fin = true;
  stream.stream.data = buffer::pattern(1000, 3);
  p.frames.push_back(std::move(stream));

  nkq::frame ack;
  ack.type = nkq::frame_type::ack;
  ack.ack.largest = 39;
  ack.ack.bitmap = 0b1011;
  ack.ack.max_data = 1 << 16;
  p.frames.push_back(ack);

  nkq::frame token;
  token.type = nkq::frame_type::new_token;
  token.token.token = 77;
  p.frames.push_back(token);

  nkq::frame close;
  close.type = nkq::frame_type::close;
  close.close.error = 4;
  p.frames.push_back(close);
  return p;
}

TEST(nkq_wire, roundtrips_every_frame_type) {
  const nkq::wire_packet p = sample_packet();
  const buffer wire = nkq::encode(p);
  const auto back = nkq::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, p.type);
  EXPECT_EQ(back->conn_id, p.conn_id);
  EXPECT_EQ(back->pn, p.pn);
  EXPECT_EQ(back->token, p.token);
  ASSERT_EQ(back->frames.size(), p.frames.size());
  const auto& sf = back->frames[0].stream;
  EXPECT_EQ(back->frames[0].type, nkq::frame_type::stream);
  EXPECT_EQ(sf.offset, 8192u);
  EXPECT_TRUE(sf.fin);
  ASSERT_EQ(sf.data.size(), 1000u);
  EXPECT_TRUE(sf.data.matches_pattern(3));
  EXPECT_EQ(back->frames[1].ack.largest, 39u);
  EXPECT_EQ(back->frames[1].ack.bitmap, 0b1011u);
  EXPECT_EQ(back->frames[1].ack.max_data, std::uint64_t{1} << 16);
  EXPECT_EQ(back->frames[2].token.token, 77u);
  EXPECT_EQ(back->frames[3].close.error, 4u);
  EXPECT_TRUE(p.ack_eliciting());
}

TEST(nkq_wire, rejects_truncation_at_every_length) {
  const nkq::wire_packet p = sample_packet();
  const buffer wire = nkq::encode(p);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const buffer cut_wire = wire.prefix(len);
    const auto cut = nkq::decode(cut_wire);
    if (!cut.has_value()) continue;  // rejected — fine
    // A cut landing exactly on a frame boundary decodes to a shorter but
    // self-consistent packet; anything mid-frame must be rejected. Either
    // way, never a crash and never phantom frames.
    ASSERT_LT(cut->frames.size(), p.frames.size()) << "prefix length " << len;
    const buffer re = nkq::encode(*cut);
    ASSERT_EQ(re.size(), len) << "boundary decode must re-encode to the cut";
  }
}

// Deterministic handshake fuzz: random mutations and random garbage must
// never crash the decoder, and whatever does decode must re-encode without
// violating the caps. Runs under UBSan in CI (--gtest_filter='*fuzz*').
TEST(nkq_fuzz, decoder_survives_mutated_and_random_datagrams) {
  std::uint64_t rng = 0x6e6b71u;
  const buffer base = nkq::encode(sample_packet());
  const auto base_bytes = base.bytes();

  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::byte> work(base_bytes.begin(), base_bytes.end());
    const int mode = static_cast<int>(splitmix(rng) % 3);
    if (mode == 0) {
      // Flip 1..8 bytes in place.
      const std::size_t flips = 1 + splitmix(rng) % 8;
      for (std::size_t f = 0; f < flips; ++f) {
        work[splitmix(rng) % work.size()] =
            static_cast<std::byte>(splitmix(rng));
      }
    } else if (mode == 1) {
      // Truncate to a random prefix.
      work.resize(splitmix(rng) % (work.size() + 1));
    } else {
      // Pure noise, 0..256 bytes.
      work.resize(splitmix(rng) % 257);
      for (auto& b : work) b = static_cast<std::byte>(splitmix(rng));
    }
    const auto decoded =
        nkq::decode(buffer::copy_of(work.data(), work.size()));
    if (decoded.has_value()) {
      EXPECT_LE(decoded->frames.size(), nkq::max_frames_per_packet);
      for (const auto& f : decoded->frames) {
        EXPECT_LE(f.stream.data.size(), nkq::max_stream_frame_bytes);
      }
      (void)nkq::encode(*decoded);  // must not trap either
    }
  }
}

// End-to-end over NetKernel: an nkq tenant moves a pattern-validated bulk
// transfer across the testbed while chaos pulses push the wire to 5% loss.
// Loss recovery must deliver every byte intact and book retransmits.
TEST(nkq_e2e, lossy_pulses_bulk_transfer_recovers_all_bytes) {
  apps::testbed bed{apps::datacenter_params(21)};
  const auto cc = tcp::cc_algorithm::cubic;

  core::nsm_config nsm_cfg;
  nsm_cfg.transport = "nkq";
  nsm_cfg.cc = cc;
  nsm_cfg.tcp = apps::datacenter_tcp(cc);
  virt::vm_config vm_cfg;
  vm_cfg.name = "tx-vm";
  nsm_cfg.name = "nsm-tx";
  auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "rx-vm";
  nsm_cfg.name = "nsm-rx";
  auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*rx.api, 5001, /*validate=*/true};
  sink.start();
  apps::bulk_sender_config scfg;
  // 2 x 16 MB takes >6 ms at 40 GbE line rate, so the transfer straddles
  // every pulse below instead of finishing before the first one fires.
  scfg.flows = 2;
  scfg.bytes_per_flow = 16 << 20;
  apps::bulk_sender sender{*tx.api, {rx.module->config().address, 5001},
                           scfg};
  sender.start();

  sim::chaos_schedule chaos{bed.sim(), 21};
  for (int pulse = 0; pulse < 3; ++pulse) {
    chaos.pulse("wire-lossy", milliseconds(1 + 3 * pulse), milliseconds(2),
                [&bed](bool on) {
                  bed.wire().forward().set_loss_rate(on ? 0.05 : 0.0);
                  bed.wire().backward().set_loss_rate(on ? 0.05 : 0.0);
                });
  }
  chaos.arm();

  std::uint64_t retransmits = 0;
  for (int i = 0; i < 3000 && sink.flows_finished() < 2; ++i) {
    bed.run_for(milliseconds(1));
    // Sample mid-flight: rows vanish once flows close.
    for (const auto& row : bed.netkernel(side::a).flow_table()) {
      if (row.transport == "nkq") {
        retransmits = std::max(retransmits, row.info.retransmits);
      }
    }
  }

  EXPECT_EQ(sink.flows_finished(), 2u);
  EXPECT_EQ(sink.total_bytes(), 2u * (16u << 20));
  EXPECT_TRUE(sink.pattern_ok()) << "corruption under loss recovery";
  EXPECT_GT(retransmits, 0u) << "pulses at 5% loss must cost retransmits";
}

// 0-RTT: the second connection to the same server presents the cached
// token and completes immediately instead of waiting out the handshake.
TEST(nkq_e2e, zero_rtt_resumption_cuts_reconnect_latency) {
  apps::testbed bed{apps::wan_params(33, 0.0)};
  const auto cc = tcp::cc_algorithm::bbr;

  core::nsm_config nsm_cfg;
  nsm_cfg.transport = "nkq";
  nsm_cfg.cc = cc;
  nsm_cfg.tcp = apps::wan_tcp(cc);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client-vm";
  nsm_cfg.name = "nsm-client";
  auto cl = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server-vm";
  nsm_cfg.name = "nsm-server";
  auto sv = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*sv.api, 6001, false};
  sink.start();
  const net::socket_addr dest{sv.module->config().address, 6001};

  auto connect_once = [&](sim_time& latency) {
    auto s = cl.api->open().value();
    bool connected = false;
    sim_time done{};
    cl.api->on_event(s, [&](apps::app_socket, apps::app_event t, errc) {
      if (t == stack::socket_event_type::connected && !connected) {
        connected = true;
        done = bed.sim().now();
      }
    });
    const sim_time start = bed.sim().now();
    ASSERT_EQ(cl.api->connect(s, dest).error(), errc::ok);
    for (int i = 0; i < 2000 && !connected; ++i) bed.run_for(milliseconds(1));
    ASSERT_TRUE(connected);
    latency = done - start;
    (void)cl.api->close(s);
    cl.api->drop_handler(s);
    // Let the close and the (instant) resumed handshake cross the WAN so
    // the server books it before the next measurement.
    bed.run_for(milliseconds(900));
  };

  sim_time cold{};
  sim_time resumed{};
  connect_once(cold);
  connect_once(resumed);

  // Cold pays at least one 350 ms RTT; resumed must be at most half.
  EXPECT_GE(cold, milliseconds(350));
  EXPECT_LE(resumed * 2, cold);

  auto* snt = dynamic_cast<nkq::nkq_transport*>(&sv.module->transport());
  auto* cnt = dynamic_cast<nkq::nkq_transport*>(&cl.module->transport());
  ASSERT_NE(snt, nullptr);
  ASSERT_NE(cnt, nullptr);
  EXPECT_EQ(snt->stats().handshakes_cold, 1u);
  EXPECT_EQ(snt->stats().handshakes_resumed, 1u);
  EXPECT_EQ(snt->stats().tokens_rejected, 0u);
  EXPECT_EQ(cnt->stats().zero_rtt_connects, 1u);
}

}  // namespace
