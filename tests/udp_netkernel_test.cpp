// UDP datagram service through the NetKernel path: GuestLib -> nqe queues
// -> ServiceLib -> NSM stack -> wire, and back.
#include <gtest/gtest.h>

#include "apps/scenario.hpp"

namespace nk::core {
namespace {

using apps::side;
using apps::testbed;

struct udp_rig {
  udp_rig() : bed{apps::datacenter_params(55)} {
    nsm_config nsm_cfg;
    nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
    virt::vm_config vm_cfg;
    vm_cfg.name = "a-vm";
    a = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
    vm_cfg.name = "b-vm";
    nsm_cfg.name = "nsm-b";
    b = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  }

  testbed bed;
  apps::nk_tenant a;
  apps::nk_tenant b;
};

TEST(netkernel_udp, datagram_roundtrip) {
  udp_rig rig;
  auto& ga = *rig.a.glib;
  auto& gb = *rig.b.glib;

  const auto server = gb.nk_udp_open(9000).value();
  const auto client = ga.nk_udp_open().value();
  rig.bed.run_for(milliseconds(5));  // let the opens reach the NSMs

  ASSERT_TRUE(ga.nk_udp_send_to(client,
                                {rig.b.module->config().address, 9000},
                                buffer::pattern(777, 0))
                  .ok());
  rig.bed.run_for(milliseconds(20));

  auto got = gb.nk_udp_recv_from(server);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().second.size(), 777u);
  EXPECT_TRUE(got.value().second.matches_pattern(0));
  // The observed source is the sender-side NSM's address.
  EXPECT_EQ(got.value().first.ip, rig.a.module->config().address);

  // Reply to the observed source.
  ASSERT_TRUE(gb.nk_udp_send_to(server, got.value().first,
                                buffer::pattern(99, 5))
                  .ok());
  rig.bed.run_for(milliseconds(20));
  auto reply = ga.nk_udp_recv_from(client);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().second.matches_pattern(5));
}

TEST(netkernel_udp, recv_on_empty_would_block) {
  udp_rig rig;
  const auto sock = rig.a.glib->nk_udp_open(1234).value();
  rig.bed.run_for(milliseconds(5));
  EXPECT_EQ(rig.a.glib->nk_udp_recv_from(sock).error(), errc::would_block);
}

TEST(netkernel_udp, oversized_datagram_rejected) {
  udp_rig rig;
  const auto sock = rig.a.glib->nk_udp_open().value();
  rig.bed.run_for(milliseconds(5));
  // Chunk size defaults to 8 KB; a 64 KB datagram cannot be represented.
  EXPECT_EQ(rig.a.glib
                ->nk_udp_send_to(sock, {rig.b.module->config().address, 1},
                                 buffer::zeroed(64 * 1024))
                .error(),
            errc::invalid_argument);
}

TEST(netkernel_udp, tcp_api_rejected_on_udp_socket_and_vice_versa) {
  udp_rig rig;
  auto& glib = *rig.a.glib;
  const auto udp_fd = glib.nk_udp_open().value();
  const auto tcp_fd = glib.nk_socket().value();
  rig.bed.run_for(milliseconds(5));
  EXPECT_EQ(glib.nk_udp_recv_from(tcp_fd).error(), errc::invalid_argument);
  EXPECT_EQ(glib.nk_udp_send_to(tcp_fd, {{}, 1}, buffer::zeroed(8)).error(),
            errc::invalid_argument);
  // nk_recv on a UDP socket reports would_block (no stream bytes).
  EXPECT_EQ(glib.nk_recv(udp_fd, 100).error(), errc::would_block);
}

TEST(netkernel_udp, chunks_recycle_after_recv_and_close) {
  udp_rig rig;
  auto& ga = *rig.a.glib;
  auto& gb = *rig.b.glib;
  const auto server = gb.nk_udp_open(9000).value();
  const auto client = ga.nk_udp_open().value();
  rig.bed.run_for(milliseconds(5));

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ga.nk_udp_send_to(client,
                                  {rig.b.module->config().address, 9000},
                                  buffer::pattern(256, 0))
                    .ok());
  }
  rig.bed.run_for(milliseconds(20));
  int received = 0;
  while (gb.nk_udp_recv_from(server).ok()) ++received;
  EXPECT_EQ(received, 20);
  ASSERT_TRUE(gb.nk_close(server).ok());
  ASSERT_TRUE(ga.nk_close(client).ok());
  rig.bed.run_for(milliseconds(20));

  auto* ch_a = rig.bed.netkernel(side::a).channel_of(rig.a.vm->id());
  auto* ch_b = rig.bed.netkernel(side::b).channel_of(rig.b.vm->id());
  EXPECT_EQ(ch_a->pool.chunks_free(), ch_a->pool.chunk_count());
  EXPECT_EQ(ch_b->pool.chunks_free(), ch_b->pool.chunk_count());
}

TEST(netkernel_udp, many_datagrams_in_order_per_sender) {
  udp_rig rig;
  auto& ga = *rig.a.glib;
  auto& gb = *rig.b.glib;
  const auto server = gb.nk_udp_open(9000).value();
  const auto client = ga.nk_udp_open().value();
  rig.bed.run_for(milliseconds(5));

  constexpr int count = 50;
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(ga.nk_udp_send_to(client,
                                  {rig.b.module->config().address, 9000},
                                  buffer::pattern(100, 100ull * i))
                    .ok());
    rig.bed.run_for(microseconds(50));
  }
  rig.bed.run_for(milliseconds(20));

  // Same-path datagrams arrive in order.
  for (int i = 0; i < count; ++i) {
    auto r = gb.nk_udp_recv_from(server);
    ASSERT_TRUE(r.ok()) << "datagram " << i;
    EXPECT_TRUE(r.value().second.matches_pattern(100ull * i)) << i;
  }
}

}  // namespace
}  // namespace nk::core
