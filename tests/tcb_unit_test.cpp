// White-box tcb tests: a single TCP control block driven with hand-crafted
// segments, no stack or network below it. Covers wire-level behaviours the
// loopback tests cannot isolate: exact flags, ECN negotiation bits, Karn's
// rule, zero-window probes, simultaneous close, timestamp echo.
#include <gtest/gtest.h>

#include <deque>

#include "tcp/seq.hpp"
#include "tcp/tcb.hpp"

namespace nk::tcp {
namespace {

constexpr std::uint32_t peer_isn = 9000;

// Harness: owns one tcb, captures everything it emits, and lets tests
// inject peer segments.
struct tcb_harness {
  explicit tcb_harness(tcp_config cfg = make_cfg()) {
    tcb::environment env;
    env.sim = &sim;
    env.emit = [this](net::packet p) { sent.push_back(std::move(p)); };
    env.on_connected = [this] { connected = true; };
    env.on_readable = [this] { ++readable_events; };
    env.on_writable = [this] { ++writable_events; };
    env.on_closed = [this](errc reason) {
      closed = true;
      close_reason = reason;
    };
    net::four_tuple tuple{{net::ipv4_addr::from_octets(10, 0, 0, 1), 1000},
                          {net::ipv4_addr::from_octets(10, 0, 0, 2), 2000}};
    conn = std::make_unique<tcb>(std::move(env), cfg, tuple, /*iss=*/5000);
  }

  static tcp_config make_cfg() {
    tcp_config cfg;
    cfg.mss = 1000;
    cfg.cc = cc_algorithm::newreno;
    cfg.rto.min_rto = milliseconds(50);
    cfg.delayed_ack_timeout = milliseconds(5);
    return cfg;
  }

  // Builds a peer segment. seq/ack are the peer's absolute stream offsets
  // (peer ISN = peer_isn; our ISS = 5000).
  net::packet peer_segment(std::uint64_t seq_abs, std::uint64_t ack_abs,
                           net::tcp_flags flags, buffer payload = {},
                           std::uint32_t wnd = 1 << 20) {
    net::packet p;
    p.ip.src = net::ipv4_addr::from_octets(10, 0, 0, 2);
    p.ip.dst = net::ipv4_addr::from_octets(10, 0, 0, 1);
    net::tcp_header h;
    h.src_port = 2000;
    h.dst_port = 1000;
    h.seq = wrap_seq(seq_abs, peer_isn);
    if (flags.ack) h.ack = wrap_seq(ack_abs, 5000);
    h.flags = flags;
    h.wnd = wnd;
    p.l4 = h;
    p.payload = std::move(payload);
    return p;
  }

  // Completes the three-way handshake as the active opener.
  void establish() {
    conn->connect();
    sim.run_until(sim.now() + microseconds(10));
    ASSERT_FALSE(sent.empty());
    ASSERT_TRUE(sent.front().tcp().flags.syn);
    sent.clear();
    net::tcp_flags synack;
    synack.syn = true;
    synack.ack = true;
    conn->segment_arrived(peer_segment(0, 1, synack));
    sim.run_until(sim.now() + microseconds(10));
    ASSERT_TRUE(connected);
    sent.clear();
  }

  net::packet last_sent() { return sent.back(); }

  sim::simulator sim;
  std::unique_ptr<tcb> conn;
  std::deque<net::packet> sent;
  bool connected = false;
  bool closed = false;
  errc close_reason = errc::ok;
  int readable_events = 0;
  int writable_events = 0;
};

TEST(tcb_wire, syn_carries_correct_iss_and_no_ack) {
  tcb_harness h;
  h.conn->connect();
  h.sim.run_until(microseconds(10));
  ASSERT_EQ(h.sent.size(), 1u);
  const auto& syn = h.sent[0].tcp();
  EXPECT_TRUE(syn.flags.syn);
  EXPECT_FALSE(syn.flags.ack);
  EXPECT_EQ(syn.seq, 5000u);
  EXPECT_EQ(h.conn->state(), tcp_state::syn_sent);
}

TEST(tcb_wire, handshake_ack_numbers_are_exact) {
  tcb_harness h;
  h.establish();
  // Send one data byte; the segment must carry seq = ISS+1, ack = IRS+1.
  ASSERT_TRUE(h.conn->send(buffer::pattern(1, 0)).ok());
  h.sim.run_until(h.sim.now() + microseconds(10));
  ASSERT_FALSE(h.sent.empty());
  const auto& d = h.last_sent().tcp();
  EXPECT_EQ(d.seq, 5001u);
  EXPECT_EQ(d.ack, peer_isn + 1);
  EXPECT_TRUE(d.flags.psh);
}

TEST(tcb_wire, timestamps_echo_peer_ts_val) {
  tcb_harness h;
  h.establish();
  net::tcp_flags ack;
  ack.ack = true;
  auto seg = h.peer_segment(1, 1, ack, buffer::pattern(100, 0));
  seg.tcp().ts_val = 0xdeadbeef;
  h.conn->segment_arrived(seg);
  h.sim.run_until(h.sim.now() + milliseconds(10));
  ASSERT_FALSE(h.sent.empty());
  EXPECT_EQ(h.last_sent().tcp().ts_ecr, 0xdeadbeef);
}

TEST(tcb_wire, rst_tears_down_immediately) {
  tcb_harness h;
  h.establish();
  net::tcp_flags rst;
  rst.rst = true;
  h.conn->segment_arrived(h.peer_segment(1, 1, rst));
  EXPECT_TRUE(h.closed);
  EXPECT_EQ(h.close_reason, errc::connection_reset);
  EXPECT_EQ(h.conn->state(), tcp_state::closed);
}

TEST(tcb_wire, abort_emits_rst) {
  tcb_harness h;
  h.establish();
  h.conn->abort();
  ASSERT_FALSE(h.sent.empty());
  EXPECT_TRUE(h.last_sent().tcp().flags.rst);
  EXPECT_TRUE(h.closed);
}

TEST(tcb_karn, no_rtt_sample_from_retransmission) {
  tcb_harness h;
  h.establish();
  ASSERT_TRUE(h.conn->send(buffer::pattern(1000, 0)).ok());
  h.sim.run_until(h.sim.now() + microseconds(10));
  const sim_time srtt_before = h.conn->rtt().srtt();

  // Let the RTO fire (segment "lost"), then ack the retransmission much
  // later. Karn: the late ack must not poison srtt.
  h.sim.run_until(h.sim.now() + seconds(2));
  EXPECT_GT(h.conn->stats().rtos, 0u);
  net::tcp_flags ack;
  ack.ack = true;
  h.conn->segment_arrived(h.peer_segment(1, 1001, ack));
  // srtt unchanged (no valid sample was available in this exchange).
  EXPECT_EQ(h.conn->rtt().srtt(), srtt_before);
}

TEST(tcb_zero_window, probe_carries_one_byte) {
  tcb_harness h;
  h.establish();
  // Peer closes its window entirely.
  net::tcp_flags ack;
  ack.ack = true;
  h.conn->segment_arrived(h.peer_segment(1, 1, ack, {}, /*wnd=*/0));
  ASSERT_TRUE(h.conn->send(buffer::pattern(5000, 0)).ok());
  h.sent.clear();
  // Persist timer fires within a few RTOs.
  h.sim.run_until(h.sim.now() + seconds(3));
  ASSERT_FALSE(h.sent.empty());
  bool saw_probe = false;
  for (const auto& p : h.sent) {
    if (p.payload.size() == 1) saw_probe = true;
  }
  EXPECT_TRUE(saw_probe);

  // Window reopens: transfer resumes in full segments.
  h.sent.clear();
  std::uint64_t acked = h.conn->stats().bytes_acked;
  h.conn->segment_arrived(h.peer_segment(1, 1 + acked, ack, {}, 1 << 20));
  h.sim.run_until(h.sim.now() + milliseconds(10));
  EXPECT_FALSE(h.sent.empty());
  EXPECT_EQ(h.sent.front().payload.size(), 1000u);
}

TEST(tcb_close, simultaneous_close_reaches_closed) {
  tcb_harness h;
  h.establish();
  h.conn->close();  // our FIN goes out
  h.sim.run_until(h.sim.now() + microseconds(10));
  ASSERT_TRUE(h.last_sent().tcp().flags.fin);
  EXPECT_EQ(h.conn->state(), tcp_state::fin_wait_1);

  // Peer's FIN crosses ours (acks only our SYN-era data, not the FIN).
  net::tcp_flags fin;
  fin.fin = true;
  fin.ack = true;
  h.conn->segment_arrived(h.peer_segment(1, 1, fin));
  EXPECT_EQ(h.conn->state(), tcp_state::closing);

  // Now the peer acks our FIN: TIME_WAIT, then closed after the timeout.
  net::tcp_flags ack;
  ack.ack = true;
  h.conn->segment_arrived(h.peer_segment(2, 2, ack));
  EXPECT_EQ(h.conn->state(), tcp_state::time_wait);
  h.sim.run_until(h.sim.now() + seconds(2));
  EXPECT_TRUE(h.closed);
  EXPECT_EQ(h.close_reason, errc::ok);
}

TEST(tcb_close, half_close_still_receives) {
  tcb_harness h;
  h.establish();
  h.conn->shutdown_write();
  h.sim.run_until(h.sim.now() + microseconds(10));
  EXPECT_EQ(h.conn->state(), tcp_state::fin_wait_1);

  // Peer acks the FIN, then keeps sending data: we must accept and ack it.
  net::tcp_flags ack;
  ack.ack = true;
  h.conn->segment_arrived(h.peer_segment(1, 2, ack));
  EXPECT_EQ(h.conn->state(), tcp_state::fin_wait_2);
  h.conn->segment_arrived(h.peer_segment(1, 2, ack, buffer::pattern(500, 0)));
  h.sim.run_until(h.sim.now() + milliseconds(10));
  EXPECT_EQ(h.conn->receive_available(), 500u);
  EXPECT_TRUE(h.conn->receive(500).matches_pattern(0));
}

TEST(tcb_recv, out_of_order_acks_carry_sack_blocks) {
  tcb_harness h;
  h.establish();
  net::tcp_flags ack;
  ack.ack = true;
  // Peer data arrives with a hole: bytes [1001,2001) but not [1,1001).
  h.conn->segment_arrived(
      h.peer_segment(1001, 1, ack, buffer::pattern(1000, 1000)));
  h.sim.run_until(h.sim.now() + milliseconds(10));
  ASSERT_FALSE(h.sent.empty());
  const auto& out = h.last_sent().tcp();
  ASSERT_GE(out.sack_count, 1);
  // The SACK block names the held range in the peer's sequence space.
  EXPECT_EQ(out.sacks[0].start, wrap_seq(1001, peer_isn));
  EXPECT_EQ(out.sacks[0].end, wrap_seq(2001, peer_isn));
}

TEST(tcb_recv, duplicate_fin_is_reacked_not_reprocessed) {
  tcb_harness h;
  h.establish();
  net::tcp_flags fin;
  fin.fin = true;
  fin.ack = true;
  h.conn->segment_arrived(h.peer_segment(1, 1, fin));
  EXPECT_EQ(h.conn->state(), tcp_state::close_wait);
  const int readable_before = h.readable_events;
  h.sent.clear();
  h.conn->segment_arrived(h.peer_segment(1, 1, fin));  // retransmitted FIN
  EXPECT_EQ(h.conn->state(), tcp_state::close_wait);
  EXPECT_EQ(h.readable_events, readable_before);  // EOF reported once
  EXPECT_FALSE(h.sent.empty());                   // but re-acked
}

TEST(tcb_ecn, dctcp_negotiates_and_echoes_ce) {
  tcp_config cfg = tcb_harness::make_cfg();
  cfg.cc = cc_algorithm::dctcp;
  tcb_harness h{cfg};
  h.conn->connect();
  h.sim.run_until(microseconds(10));
  // SYN must request ECN (ECE+CWR).
  EXPECT_TRUE(h.sent.front().tcp().flags.ece);
  EXPECT_TRUE(h.sent.front().tcp().flags.cwr);
  h.sent.clear();

  net::tcp_flags synack;
  synack.syn = true;
  synack.ack = true;
  synack.ece = true;  // peer confirms ECN
  h.conn->segment_arrived(h.peer_segment(0, 1, synack));
  h.sim.run_until(h.sim.now() + microseconds(10));
  ASSERT_TRUE(h.conn->ecn_active());

  // A CE-marked data segment arrives: the ACK must carry ECE.
  net::tcp_flags ack;
  ack.ack = true;
  auto seg = h.peer_segment(1, 1, ack, buffer::pattern(100, 0));
  seg.ip.ecn = net::ecn_codepoint::ce;
  h.sent.clear();
  h.conn->segment_arrived(seg);
  h.sim.run_until(h.sim.now() + milliseconds(10));
  ASSERT_FALSE(h.sent.empty());
  EXPECT_TRUE(h.last_sent().tcp().flags.ece);

  // Our own data segments are ECT(0)-marked.
  ASSERT_TRUE(h.conn->send(buffer::pattern(100, 0)).ok());
  h.sim.run_until(h.sim.now() + microseconds(10));
  EXPECT_EQ(h.last_sent().ip.ecn, net::ecn_codepoint::ect0);
}

TEST(tcb_ecn, plain_cubic_does_not_negotiate) {
  tcb_harness h;  // newreno, no ECN
  h.conn->connect();
  h.sim.run_until(microseconds(10));
  EXPECT_FALSE(h.sent.front().tcp().flags.ece);
  h.establish();
  EXPECT_FALSE(h.conn->ecn_active());
}

TEST(tcb_buffers, send_respects_buffer_capacity) {
  tcp_config cfg = tcb_harness::make_cfg();
  cfg.send_buffer = 4000;
  tcb_harness h{cfg};
  h.establish();
  auto r = h.conn->send(buffer::pattern(10000, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4000u);
  EXPECT_EQ(h.conn->send_space(), 0u);
  EXPECT_EQ(h.conn->send(buffer::pattern(1, 0)).error(), errc::would_block);
}

TEST(tcb_buffers, send_after_shutdown_rejected) {
  tcb_harness h;
  h.establish();
  h.conn->shutdown_write();
  EXPECT_EQ(h.conn->send(buffer::pattern(10, 0)).error(), errc::closed);
}

}  // namespace
}  // namespace nk::tcp
