// Centralized management tests: health sampling, overload alerts, channel
// stall detection, and the scale-up autoscaler (paper §5 / §2.1).
#include <gtest/gtest.h>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"
#include "core/hostile.hpp"
#include "core/monitor.hpp"

namespace nk::core {
namespace {

using apps::side;
using apps::testbed;

TEST(health_monitor, samples_every_nsm_periodically) {
  testbed bed{apps::datacenter_params(21)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();
  bed.run_for(milliseconds(52));

  EXPECT_EQ(mon.ticks(), 10u);
  EXPECT_EQ(mon.history_of(t1.module->id()).size(), 10u);
  EXPECT_TRUE(mon.alerts().empty());  // idle NSM: no overload
  EXPECT_NE(mon.report().find("util="), std::string::npos);
  mon.stop();
  bed.run_for(milliseconds(50));
  EXPECT_EQ(mon.ticks(), 10u);  // stopped monitors stop ticking
}

TEST(health_monitor, overload_alert_fires_under_saturation) {
  testbed bed{apps::datacenter_params(22)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  // A heavy stack guarantees the single NSM core saturates.
  nsm_cfg.tx_cost = stack::processing_cost{nanoseconds(300), 0.6};
  virt::vm_config vm_cfg;
  vm_cfg.name = "tx";
  auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "rx";
  nsm_cfg.name = "nsm-rx";
  auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*rx.api, 5001, false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 2;
  scfg.bytes_per_flow = 0;
  scfg.patterned = false;
  apps::bulk_sender sender{*tx.api, {rx.module->config().address, 5001},
                           scfg};
  sender.start();

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();
  bed.run_for(milliseconds(200));

  bool overloaded = false;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::nsm_overloaded &&
        a.module == tx.module->id()) {
      overloaded = true;
    }
  }
  EXPECT_TRUE(overloaded);
}

TEST(health_monitor, stalled_channel_detected) {
  // Batched-interrupt mode with a hand-pushed nqe and no doorbell: the job
  // queue holds data but nothing drains it — a wedged channel.
  auto params = apps::datacenter_params(23);
  params.netkernel.notification.kind =
      notify_config::mode::batched_interrupt;
  testbed bed{params};
  nsm_config nsm_cfg;
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);

  auto* ch = bed.netkernel(side::a).channel_of(t1.vm->id());
  shm::nqe junk;
  junk.op = shm::nqe_op::req_send;
  junk.handle = 424242;
  ASSERT_TRUE(ch->vm_q().job.push(junk));  // no doorbell rung

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();
  bed.run_for(milliseconds(100));

  bool stalled = false;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::channel_stalled && a.vm == t1.vm->id()) {
      stalled = true;
    }
  }
  EXPECT_TRUE(stalled);
}

TEST(failure_detection, crashed_nsm_is_silent_and_monitor_flags_it) {
  testbed bed{apps::datacenter_params(25)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  // Server listener + a connected tenant socket.
  auto& gs = *server.glib;
  const auto lfd = gs.nk_socket().value();
  ASSERT_TRUE(gs.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(gs.nk_listen(lfd).ok());
  auto& gc = *client.glib;
  const auto fd = gc.nk_socket().value();
  bool connected = false;
  errc tenant_error = errc::ok;
  gc.set_event_handler([&](std::uint32_t f, stack::socket_event_type t,
                           errc e) {
    if (f != fd) return;
    if (t == stack::socket_event_type::connected) connected = true;
    if (t == stack::socket_event_type::error) tenant_error = e;
  });
  ASSERT_TRUE(
      gc.nk_connect(fd, {server.module->config().address, 7000}).ok());
  bed.run_for(milliseconds(50));
  ASSERT_TRUE(connected);

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();

  // The client-side NSM dies. A crashed stack says no goodbyes: without a
  // supervisor there is no replacement, so the tenant hears nothing.
  bed.netkernel(side::a).service_of(client.module->id())->fail();
  bed.run_for(milliseconds(50));
  EXPECT_EQ(tenant_error, errc::ok);

  // The monitor sees the crash flag within one tick.
  bool flagged = false;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::nsm_failed && a.module == client.module->id()) {
      flagged = true;
      EXPECT_NE(a.detail.find("crashed"), std::string::npos);
    }
  }
  EXPECT_TRUE(flagged);

  // New work toward the dead module queues without progress — the stall
  // detector flags the wedged channel too.
  const auto fd2 = gc.nk_socket().value();
  (void)gc.nk_connect(fd2, {server.module->config().address, 7000});
  bed.run_for(milliseconds(200));
  bool stalled = false;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::channel_stalled && a.vm == client.vm->id()) {
      stalled = true;
    }
  }
  EXPECT_TRUE(stalled);
}

TEST(failure_detection, frozen_nsm_detected_within_deadline) {
  // freeze() wedges the drain loop without setting the failed flag — the
  // watchdog must catch the silence via missed heartbeats, and must honor
  // the configured deadline (no alert before it, one soon after).
  testbed bed{apps::datacenter_params(26)};
  nsm_config nsm_cfg;
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  bed.run_for(milliseconds(10));  // module boots, heartbeat starts

  bed.netkernel(side::a).service_of(t1.module->id())->freeze();
  const sim_time frozen_at = bed.sim().now();
  // Queued-but-undrained work is what distinguishes "idle" from "wedged".
  (void)t1.glib->nk_socket();

  monitor_config mcfg;
  mcfg.interval = milliseconds(2);
  mcfg.failure_deadline = milliseconds(20);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();

  bed.run_for(milliseconds(15));  // inside the deadline: no verdict yet
  for (const auto& a : mon.alerts()) {
    EXPECT_NE(a.kind, alert_kind::nsm_failed);
  }

  bed.run_for(milliseconds(35));
  const alert* failure = nullptr;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::nsm_failed && a.module == t1.module->id()) {
      failure = &a;
    }
  }
  ASSERT_NE(failure, nullptr);
  EXPECT_NE(failure->detail.find("unresponsive"), std::string::npos);
  EXPECT_GE(failure->at - frozen_at, mcfg.failure_deadline);
  EXPECT_LE(failure->at - frozen_at, mcfg.failure_deadline + milliseconds(10));
}

TEST(failure_detection, supervisor_replaces_nsm_and_listener_resumes) {
  testbed bed{apps::datacenter_params(27)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server";
  nsm_cfg.name = "nsm-b";
  nsm_cfg.form = nsm_form::container;  // 60 ms boot keeps the test brisk
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  auto& gs = *server.glib;
  const auto lfd = gs.nk_socket().value();
  ASSERT_TRUE(gs.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(gs.nk_listen(lfd).ok());
  int accepts = 0;
  errc listener_error = errc::ok;
  errc child_error = errc::ok;
  gs.set_event_handler([&](std::uint32_t f, stack::socket_event_type t,
                           errc e) {
    if (t == stack::socket_event_type::accept_ready && f == lfd) ++accepts;
    if (t == stack::socket_event_type::error) {
      (f == lfd ? listener_error : child_error) = e;
    }
  });

  auto& gc = *client.glib;
  const auto fd = gc.nk_socket().value();
  bool connected = false;
  gc.set_event_handler([&](std::uint32_t f, stack::socket_event_type t,
                           errc) {
    if (f == fd && t == stack::socket_event_type::connected) connected = true;
  });
  ASSERT_TRUE(
      gc.nk_connect(fd, {server.module->config().address, 7000}).ok());
  bed.run_for(milliseconds(50));
  ASSERT_TRUE(connected);
  ASSERT_EQ(accepts, 1);

  core_engine& ce = bed.netkernel(side::b);
  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{ce, mcfg};
  nsm_supervisor sup{ce, mon};
  mon.start();

  const nsm_id dead_id = server.module->id();
  ce.service_of(dead_id)->fail();
  bed.run_for(milliseconds(200));  // detect + 60 ms boot + switchover

  // The supervisor spawned exactly one replacement and retired the corpse.
  EXPECT_EQ(sup.failovers(), 1);
  EXPECT_EQ(ce.service_of(dead_id), nullptr);
  nsm* fresh = ce.nsm_by_id(sup.last_replacement());
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->config().address, server.module->config().address);

  // Established state died with the module; the listener was replayed.
  EXPECT_EQ(child_error, errc::nsm_reset);
  EXPECT_EQ(listener_error, errc::ok);
  EXPECT_GE(ce.metrics().value_of("sockets_recovered").value_or(0.0), 1.0);
  EXPECT_GE(ce.metrics().value_of("sockets_aborted").value_or(0.0), 1.0);
  EXPECT_EQ(ce.metrics().value_of("nsm_failures").value_or(0.0), 1.0);
  EXPECT_EQ(ce.metrics().get_histogram("failover_time_ns").count(), 1u);

  // The replayed listener accepts brand-new connections on the new module.
  const auto fd2 = gc.nk_socket().value();
  bool reconnected = false;
  gc.set_event_handler([&](std::uint32_t f, stack::socket_event_type t,
                           errc) {
    if (f == fd2 && t == stack::socket_event_type::connected) {
      reconnected = true;
    }
  });
  ASSERT_TRUE(
      gc.nk_connect(fd2, {server.module->config().address, 7000}).ok());
  bed.run_for(milliseconds(100));
  EXPECT_TRUE(reconnected);
  EXPECT_EQ(accepts, 2);
}

TEST(failure_detection, connect_times_out_against_dead_nsm) {
  auto params = apps::datacenter_params(28);
  params.netkernel.guest.connect_timeout = milliseconds(10);
  params.netkernel.guest.connect_retries = 1;
  testbed bed{params};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);
  bed.run_for(milliseconds(10));

  auto& gc = *client.glib;
  const auto fd = gc.nk_socket().value();
  bed.run_for(milliseconds(5));  // fd exists before the module dies
  bed.netkernel(side::a).service_of(client.module->id())->fail();

  errc err = errc::ok;
  bool connected = false;
  gc.set_event_handler([&](std::uint32_t f, stack::socket_event_type t,
                           errc e) {
    if (f != fd) return;
    if (t == stack::socket_event_type::connected) connected = true;
    if (t == stack::socket_event_type::error) err = e;
  });
  ASSERT_TRUE(
      gc.nk_connect(fd, {server.module->config().address, 7000}).ok());
  bed.run_for(milliseconds(60));

  // Instead of hanging forever the op retried once, then timed out.
  EXPECT_FALSE(connected);
  EXPECT_EQ(err, errc::timed_out);
  EXPECT_EQ(gc.stats().ops_retried, 1u);
  EXPECT_EQ(gc.stats().ops_timed_out, 1u);
}

TEST(failure_detection, accounting_invariant_holds_across_failover) {
  // Mid-stream failover with tracing at sample rate 1.0: every nqe the
  // pipeline discards — unroutable, overflow-dropped, or stale-epoch — must
  // be visible to the tracer. Nothing vanishes silently.
  auto params = apps::datacenter_params(29);
  params.netkernel.trace.enabled = true;
  params.netkernel.trace.sample_rate = 1.0;
  testbed bed{params};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "tx";
  auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "rx";
  nsm_cfg.name = "nsm-rx";
  nsm_cfg.form = nsm_form::container;
  auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*rx.api, 5001, false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 2;
  scfg.bytes_per_flow = 0;
  scfg.patterned = false;
  apps::bulk_sender sender{*tx.api, {rx.module->config().address, 5001},
                           scfg};
  sender.start();
  bed.run_for(milliseconds(100));

  core_engine& ce = bed.netkernel(side::b);
  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{ce, mcfg};
  nsm_supervisor sup{ce, mon};
  mon.start();

  ce.service_of(rx.module->id())->fail();  // mid-stream, rings full of data
  bed.run_for(milliseconds(300));
  ASSERT_EQ(sup.failovers(), 1);

  // The tracer-visibility half of the invariant needs the trace hooks
  // compiled in; with -DNK_DISABLE_TRACING only the loss side exists.
#ifndef NK_NO_TRACING
  for (auto* engine : {&bed.netkernel(side::a), &bed.netkernel(side::b)}) {
    const auto& m = engine->metrics();
    EXPECT_EQ(m.value_of("nqe_traces_overflow").value_or(0.0), 0.0);
    const double lost = m.value_of("engine_unroutable_nqes").value_or(0.0) +
                        m.value_of("engine_nqes_dropped").value_or(0.0) +
                        m.value_of("engine_stale_nqes").value_or(0.0);
    EXPECT_EQ(lost, m.value_of("nqe_traces_dropped").value_or(0.0));
  }
#endif
}

TEST(autoscaler, grants_cores_to_overloaded_nsm) {
  testbed bed{apps::datacenter_params(24)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.tx_cost = stack::processing_cost{nanoseconds(300), 0.6};
  virt::vm_config vm_cfg;
  vm_cfg.name = "tx";
  auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "rx";
  nsm_cfg.name = "nsm-rx";
  auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*rx.api, 5001, false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 3;
  scfg.bytes_per_flow = 0;
  scfg.patterned = false;
  apps::bulk_sender sender{*tx.api, {rx.module->config().address, 5001},
                           scfg};
  sender.start();

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  autoscaler scaler{bed.netkernel(side::a), bed.host(side::a), mon,
                    /*max_cores=*/3};
  mon.start();

  const auto cores_before = tx.module->cores().size();
  bed.run_for(milliseconds(400));

  EXPECT_GT(scaler.scale_ups(), 0);
  EXPECT_GT(tx.module->cores().size(), cores_before);
  EXPECT_LE(tx.module->cores().size(), 3u);
}

TEST(health_monitor, quarantine_raises_alert_with_flight_snapshot) {
  auto params = apps::datacenter_params(27);
  // Tight escalation so a short storm crosses warn -> throttle -> quarantine.
  params.netkernel.firewall.violations_per_sec = 1.0;
  params.netkernel.firewall.violation_burst = 4;
  params.netkernel.firewall.quarantine_threshold = 8;
  params.netkernel.firewall.probation = sim_time::zero();
  testbed bed{params};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "rogue";
  auto rogue = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  core_engine& ce = bed.netkernel(side::a);
  const virt::vm_id vm = rogue.vm->id();
  const nsm_id module = rogue.module->id();

  monitor_config mcfg;
  mcfg.interval = milliseconds(1);
  health_monitor mon{ce, mcfg};
  mon.start();

  hostile_guest attacker{ce, vm, 5};
  for (int i = 0; i < 50 && !ce.quarantined(vm); ++i) {
    attacker.storm(20);
    bed.run_for(milliseconds(1));
  }
  ASSERT_TRUE(ce.quarantined(vm));
  bed.run_for(milliseconds(5));  // at least one monitor tick past the event

  // The monitor turned the engine's quarantine record into an alert...
  const alert* found = nullptr;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::vm_quarantined && a.vm == vm) found = &a;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->module, module);
  EXPECT_NE(found->detail.find("quarantined"), std::string::npos);
  EXPECT_NE(found->detail.find("violations"), std::string::npos);

  // ...and captured the serving NSM's flight-recorder ring as of the
  // decision: the throttle and quarantine notes are both in the snapshot.
  auto it = mon.quarantine_snapshots().find(vm);
  ASSERT_NE(it, mon.quarantine_snapshots().end());
  EXPECT_NE(it->second.find("throttled: violation budget dry"),
            std::string::npos);
  EXPECT_NE(it->second.find("quarantined: violation budget exhausted"),
            std::string::npos);

  // Each quarantine decision is reported exactly once.
  std::size_t count = 0;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::vm_quarantined) ++count;
  }
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace nk::core
