// Centralized management tests: health sampling, overload alerts, channel
// stall detection, and the scale-up autoscaler (paper §5 / §2.1).
#include <gtest/gtest.h>

#include "apps/scenario.hpp"
#include "apps/workloads.hpp"
#include "core/monitor.hpp"

namespace nk::core {
namespace {

using apps::side;
using apps::testbed;

TEST(health_monitor, samples_every_nsm_periodically) {
  testbed bed{apps::datacenter_params(21)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();
  bed.run_for(milliseconds(52));

  EXPECT_EQ(mon.ticks(), 10u);
  EXPECT_EQ(mon.history_of(t1.module->id()).size(), 10u);
  EXPECT_TRUE(mon.alerts().empty());  // idle NSM: no overload
  EXPECT_NE(mon.report().find("util="), std::string::npos);
  mon.stop();
  bed.run_for(milliseconds(50));
  EXPECT_EQ(mon.ticks(), 10u);  // stopped monitors stop ticking
}

TEST(health_monitor, overload_alert_fires_under_saturation) {
  testbed bed{apps::datacenter_params(22)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  // A heavy stack guarantees the single NSM core saturates.
  nsm_cfg.tx_cost = stack::processing_cost{nanoseconds(300), 0.6};
  virt::vm_config vm_cfg;
  vm_cfg.name = "tx";
  auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "rx";
  nsm_cfg.name = "nsm-rx";
  auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*rx.api, 5001, false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 2;
  scfg.bytes_per_flow = 0;
  scfg.patterned = false;
  apps::bulk_sender sender{*tx.api, {rx.module->config().address, 5001},
                           scfg};
  sender.start();

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();
  bed.run_for(milliseconds(200));

  bool overloaded = false;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::nsm_overloaded &&
        a.module == tx.module->id()) {
      overloaded = true;
    }
  }
  EXPECT_TRUE(overloaded);
}

TEST(health_monitor, stalled_channel_detected) {
  // Batched-interrupt mode with a hand-pushed nqe and no doorbell: the job
  // queue holds data but nothing drains it — a wedged channel.
  auto params = apps::datacenter_params(23);
  params.netkernel.notification.kind =
      notify_config::mode::batched_interrupt;
  testbed bed{params};
  nsm_config nsm_cfg;
  virt::vm_config vm_cfg;
  vm_cfg.name = "t1";
  auto t1 = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);

  auto* ch = bed.netkernel(side::a).channel_of(t1.vm->id());
  shm::nqe junk;
  junk.op = shm::nqe_op::req_send;
  junk.handle = 424242;
  ASSERT_TRUE(ch->vm_q.job.push(junk));  // no doorbell rung

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();
  bed.run_for(milliseconds(100));

  bool stalled = false;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::channel_stalled && a.vm == t1.vm->id()) {
      stalled = true;
    }
  }
  EXPECT_TRUE(stalled);
}

TEST(failure_detection, dead_nsm_aborts_tenants_and_monitor_flags_channel) {
  testbed bed{apps::datacenter_params(25)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  virt::vm_config vm_cfg;
  vm_cfg.name = "client";
  auto client = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "server";
  nsm_cfg.name = "nsm-b";
  auto server = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  // Server listener + a connected tenant socket.
  auto& gs = *server.glib;
  const auto lfd = gs.nk_socket().value();
  ASSERT_TRUE(gs.nk_bind(lfd, 7000).ok());
  ASSERT_TRUE(gs.nk_listen(lfd).ok());
  auto& gc = *client.glib;
  const auto fd = gc.nk_socket().value();
  bool connected = false;
  errc tenant_error = errc::ok;
  gc.set_event_handler([&](std::uint32_t f, stack::socket_event_type t,
                           errc e) {
    if (f != fd) return;
    if (t == stack::socket_event_type::connected) connected = true;
    if (t == stack::socket_event_type::error) tenant_error = e;
  });
  ASSERT_TRUE(
      gc.nk_connect(fd, {server.module->config().address, 7000}).ok());
  bed.run_for(milliseconds(50));
  ASSERT_TRUE(connected);

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  mon.start();

  // The client-side NSM dies.
  bed.netkernel(side::a).service_of(client.module->id())->fail();
  bed.run_for(milliseconds(50));

  // Tenant saw the failure...
  EXPECT_EQ(tenant_error, errc::connection_reset);

  // ...and once the tenant issues new work, the dead module stops draining
  // its job queue — the monitor flags the wedged channel.
  const auto fd2 = gc.nk_socket().value();
  (void)gc.nk_connect(fd2, {server.module->config().address, 7000});
  bed.run_for(milliseconds(200));
  bool stalled = false;
  for (const auto& a : mon.alerts()) {
    if (a.kind == alert_kind::channel_stalled && a.vm == client.vm->id()) {
      stalled = true;
    }
  }
  EXPECT_TRUE(stalled);
}

TEST(autoscaler, grants_cores_to_overloaded_nsm) {
  testbed bed{apps::datacenter_params(24)};
  nsm_config nsm_cfg;
  nsm_cfg.tcp = apps::datacenter_tcp(tcp::cc_algorithm::cubic);
  nsm_cfg.tx_cost = stack::processing_cost{nanoseconds(300), 0.6};
  virt::vm_config vm_cfg;
  vm_cfg.name = "tx";
  auto tx = bed.add_netkernel_vm(side::a, vm_cfg, nsm_cfg);
  vm_cfg.name = "rx";
  nsm_cfg.name = "nsm-rx";
  auto rx = bed.add_netkernel_vm(side::b, vm_cfg, nsm_cfg);

  apps::bulk_sink sink{*rx.api, 5001, false};
  sink.start();
  apps::bulk_sender_config scfg;
  scfg.flows = 3;
  scfg.bytes_per_flow = 0;
  scfg.patterned = false;
  apps::bulk_sender sender{*tx.api, {rx.module->config().address, 5001},
                           scfg};
  sender.start();

  monitor_config mcfg;
  mcfg.interval = milliseconds(5);
  health_monitor mon{bed.netkernel(side::a), mcfg};
  autoscaler scaler{bed.netkernel(side::a), bed.host(side::a), mon,
                    /*max_cores=*/3};
  mon.start();

  const auto cores_before = tx.module->cores().size();
  bed.run_for(milliseconds(400));

  EXPECT_GT(scaler.scale_ups(), 0);
  EXPECT_GT(tx.module->cores().size(), cores_before);
  EXPECT_LE(tx.module->cores().size(), 3u);
}

}  // namespace
}  // namespace nk::core
