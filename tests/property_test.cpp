// Property-based tests (parameterized sweeps + randomized adversaries):
//   * TCP delivers an intact byte stream for every (loss rate, cc, size);
//   * reassembly reconstructs any random segmentation/ordering/duplication;
//   * the SPSC ring behaves like a queue under random operation sequences;
//   * token bucket never over-admits.
#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "common/rng.hpp"
#include "common/token_bucket.hpp"
#include "net/wire.hpp"
#include "shm/spsc_ring.hpp"
#include "tcp/reassembly.hpp"
#include "util/loopback.hpp"

namespace nk {
namespace {

// --- TCP stream integrity across the parameter grid ------------------------------------

using transfer_param = std::tuple<double /*loss*/, tcp::cc_algorithm,
                                  std::uint64_t /*bytes*/>;

class tcp_integrity : public ::testing::TestWithParam<transfer_param> {};

TEST_P(tcp_integrity, byte_stream_is_exact) {
  const auto [loss, cc, total] = GetParam();
  auto params = test::lan_params(
      static_cast<std::uint64_t>(loss * 1000) + total + static_cast<int>(cc));
  params.forward_loss = loss;
  tcp::tcp_config t = params.tcp_a;
  t.cc = cc;
  params.tcp_a = t;
  test::loopback net{params};

  stack::socket_id listener = net.b.tcp_listen(5001).value();
  stack::socket_id server_conn = 0;
  buffer_chain received;
  bool eof = false;
  net.b.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.type == stack::socket_event_type::accept_ready) {
      server_conn = net.b.accept(listener).value();
    } else if (ev.type == stack::socket_event_type::readable &&
               ev.sock == server_conn) {
      while (true) {
        auto r = net.b.recv(server_conn, 1 << 20);
        if (!r) {
          eof = r.error() == errc::closed;
          break;
        }
        received.append(std::move(r).value());
      }
    }
  });

  const auto conn = net.a.tcp_connect(net.addr_b(5001)).value();
  std::uint64_t queued = 0;
  auto push = [&, total = total] {
    while (queued < total) {
      auto r = net.a.send(
          conn, buffer::pattern(
                    std::min<std::uint64_t>(16 * 1024, total - queued),
                    queued));
      if (!r) break;
      queued += r.value();
    }
    if (queued >= total) (void)net.a.shutdown_write(conn);
  };
  net.a.set_event_handler([&](const stack::socket_event& ev) {
    if (ev.sock == conn && (ev.type == stack::socket_event_type::connected ||
                            ev.type == stack::socket_event_type::writable)) {
      push();
    }
  });

  net.run_for(seconds(120));
  ASSERT_EQ(received.size(), total);
  EXPECT_TRUE(received.pop(total).matches_pattern(0));
  EXPECT_TRUE(eof);
}

std::string transfer_param_name(
    const ::testing::TestParamInfo<transfer_param>& info) {
  const double loss = std::get<0>(info.param);
  const tcp::cc_algorithm cc = std::get<1>(info.param);
  const std::uint64_t total = std::get<2>(info.param);
  return "loss" + std::to_string(static_cast<int>(loss * 100)) + "_" +
         std::string{to_string(cc)} + "_" + std::to_string(total) + "B";
}

INSTANTIATE_TEST_SUITE_P(
    grid, tcp_integrity,
    ::testing::Combine(
        ::testing::Values(0.0, 0.01, 0.05),
        ::testing::Values(tcp::cc_algorithm::newreno, tcp::cc_algorithm::cubic,
                          tcp::cc_algorithm::bbr),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{64 * 1024},
                          std::uint64_t{512 * 1024})),
    transfer_param_name);

// --- reassembly under a random adversary ------------------------------------------------

class reassembly_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(reassembly_fuzz, random_segmentation_reconstructs_stream) {
  rng random{GetParam()};
  constexpr std::uint64_t stream_len = 64 * 1024;

  // Cut the stream into random segments.
  struct seg {
    std::uint64_t at;
    std::uint64_t len;
  };
  std::vector<seg> segs;
  for (std::uint64_t at = 0; at < stream_len;) {
    const std::uint64_t len =
        std::min<std::uint64_t>(1 + random.next_below(4096), stream_len - at);
    segs.push_back({at, len});
    at += len;
  }
  // Shuffle, duplicate some, and overlap some.
  std::vector<seg> arrivals = segs;
  for (std::size_t i = arrivals.size(); i > 1; --i) {
    std::swap(arrivals[i - 1], arrivals[random.next_below(i)]);
  }
  const std::size_t original = arrivals.size();
  for (std::size_t i = 0; i < original; ++i) {
    if (random.chance(0.3)) arrivals.push_back(arrivals[i]);  // duplicates
    if (random.chance(0.2)) {
      // Overlapping segment spanning a boundary.
      const auto& s = arrivals[i];
      const std::uint64_t at = s.at > 100 ? s.at - 100 : 0;
      const std::uint64_t end =
          std::min<std::uint64_t>(s.at + s.len + 100, stream_len);
      arrivals.push_back({at, end - at});
    }
  }

  tcp::reassembly_buffer r;
  std::uint64_t next = 0;
  buffer_chain out;
  for (const auto& s : arrivals) {
    out.append(r.insert(s.at, buffer::pattern(s.len, s.at), next));
  }
  ASSERT_EQ(next, stream_len);
  ASSERT_EQ(out.size(), stream_len);
  EXPECT_TRUE(out.pop(stream_len).matches_pattern(0));
  EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(seeds, reassembly_fuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- SPSC ring vs reference deque ----------------------------------------------------------

class ring_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ring_fuzz, behaves_like_a_bounded_queue) {
  rng random{GetParam()};
  shm::spsc_ring<std::uint64_t> ring{64};
  std::deque<std::uint64_t> model;
  std::uint64_t next_value = 0;

  for (int op = 0; op < 100000; ++op) {
    if (random.chance(0.55)) {
      const bool pushed = ring.try_push(next_value);
      const bool model_ok = model.size() < ring.capacity();
      ASSERT_EQ(pushed, model_ok);
      if (pushed) model.push_back(next_value);
      ++next_value;
    } else {
      std::uint64_t v = 0;
      const bool popped = ring.try_pop(v);
      ASSERT_EQ(popped, !model.empty());
      if (popped) {
        ASSERT_EQ(v, model.front());
        model.pop_front();
      }
    }
    ASSERT_EQ(ring.size_approx(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(seeds, ring_fuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- token bucket conservation -----------------------------------------------------------

class bucket_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(bucket_fuzz, never_admits_faster_than_rate_plus_burst) {
  rng random{GetParam()};
  const auto rate = data_rate::mbps(100);
  constexpr std::uint64_t burst = 64 * 1024;
  token_bucket tb{rate, burst};

  sim_time now{};
  std::uint64_t admitted = 0;
  for (int i = 0; i < 20000; ++i) {
    now += nanoseconds(static_cast<std::int64_t>(random.next_below(20000)));
    const std::uint64_t ask = 1 + random.next_below(8000);
    if (tb.try_consume(now, ask)) admitted += ask;
    // Invariant: total admitted <= burst + rate * elapsed (with slack for
    // the fractional-token epsilon).
    const double bound = static_cast<double>(burst) + rate.bytes_in(now) + 1.0;
    ASSERT_LE(static_cast<double>(admitted), bound);
  }
  EXPECT_GT(admitted, 0u);
}

INSTANTIATE_TEST_SUITE_P(seeds, bucket_fuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- wire codec: random packets round-trip, single-byte corruption caught ----

net::packet random_packet(rng& random) {
  net::packet p;
  p.ip.src = net::ipv4_addr{static_cast<std::uint32_t>(random.next_u64())};
  p.ip.dst = net::ipv4_addr{static_cast<std::uint32_t>(random.next_u64())};
  p.ip.ttl = static_cast<std::uint8_t>(1 + random.next_below(254));
  p.ip.id = static_cast<std::uint16_t>(random.next_u64());
  p.ip.ecn = static_cast<net::ecn_codepoint>(random.next_below(4));
  const std::size_t payload_len = random.next_below(2000);
  if (random.chance(0.8)) {
    net::tcp_header h;
    h.src_port = static_cast<std::uint16_t>(1 + random.next_below(65535));
    h.dst_port = static_cast<std::uint16_t>(1 + random.next_below(65535));
    h.seq = static_cast<std::uint32_t>(random.next_u64());
    h.ack = static_cast<std::uint32_t>(random.next_u64());
    h.flags.syn = random.chance(0.2);
    h.flags.ack = random.chance(0.8);
    h.flags.fin = random.chance(0.1);
    h.flags.psh = random.chance(0.4);
    h.flags.ece = random.chance(0.2);
    h.flags.cwr = random.chance(0.1);
    // Keep wnd a multiple of the scale and within the 16-bit scaled wire
    // field so the round trip is lossless.
    h.wnd = static_cast<std::uint32_t>(random.next_below(1 << 16)) << 7;
    h.ts_val = static_cast<std::uint32_t>(random.next_u64());
    h.ts_ecr = static_cast<std::uint32_t>(random.next_u64());
    h.sack_count = static_cast<std::uint8_t>(random.next_below(4));
    for (int b = 0; b < h.sack_count; ++b) {
      const auto start = static_cast<std::uint32_t>(random.next_u64());
      h.sacks[static_cast<std::size_t>(b)] =
          net::sack_block{start, start + 1 +
                              static_cast<std::uint32_t>(
                                  random.next_below(100000))};
    }
    p.l4 = h;
  } else {
    p.ip.proto = net::ip_proto::udp;
    net::udp_header h;
    h.src_port = static_cast<std::uint16_t>(1 + random.next_below(65535));
    h.dst_port = static_cast<std::uint16_t>(1 + random.next_below(65535));
    p.l4 = h;
  }
  p.payload = buffer::pattern(payload_len, random.next_u64());
  return p;
}

class wire_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(wire_fuzz, random_packets_roundtrip_exactly) {
  rng random{GetParam()};
  for (int i = 0; i < 500; ++i) {
    const net::packet p = random_packet(random);
    const auto bytes = net::serialize(p);
    auto parsed = net::parse(bytes);
    ASSERT_TRUE(parsed.ok()) << "packet " << i;
    const net::packet& q = parsed.value();
    ASSERT_EQ(q.ip.src, p.ip.src);
    ASSERT_EQ(q.ip.dst, p.ip.dst);
    ASSERT_EQ(q.ip.ttl, p.ip.ttl);
    ASSERT_EQ(q.ip.ecn, p.ip.ecn);
    ASSERT_EQ(q.is_tcp(), p.is_tcp());
    if (p.is_tcp()) {
      ASSERT_EQ(q.tcp().seq, p.tcp().seq);
      ASSERT_EQ(q.tcp().ack, p.tcp().ack);
      ASSERT_EQ(q.tcp().flags, p.tcp().flags);
      ASSERT_EQ(q.tcp().wnd, p.tcp().wnd);
      ASSERT_EQ(q.tcp().sack_count, p.tcp().sack_count);
      for (int b = 0; b < p.tcp().sack_count; ++b) {
        ASSERT_EQ(q.tcp().sacks[static_cast<std::size_t>(b)],
                  p.tcp().sacks[static_cast<std::size_t>(b)]);
      }
    }
    ASSERT_EQ(q.payload, p.payload);
  }
}

TEST_P(wire_fuzz, any_single_byte_flip_is_detected) {
  rng random{GetParam() + 1000};
  for (int i = 0; i < 200; ++i) {
    const net::packet p = random_packet(random);
    auto bytes = net::serialize(p);
    const std::size_t at = random.next_below(bytes.size());
    std::byte flip;
    do {
      flip = static_cast<std::byte>(random.next_below(256));
    } while (flip == std::byte{0});
    bytes[at] ^= flip;
    auto parsed = net::parse(bytes);
    // The internet checksum catches every single-byte corruption, except a
    // flip inside the IP "total length" field which may just truncate the
    // buffer view — that too must not round-trip silently as the original.
    if (parsed.ok()) {
      ASSERT_FALSE(parsed.value().payload == p.payload &&
                   parsed.value().ip.src == p.ip.src)
          << "corruption at byte " << at << " went unnoticed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(seeds, wire_fuzz,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace nk
